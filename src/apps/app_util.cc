#include "apps/app_util.h"

namespace dsim::apps {

Task<void> write_result(sim::ProcessCtx& ctx, const std::string& name,
                        const std::string& payload) {
  const std::string path = "/shared/results/" + name;
  const Fd fd = co_await ctx.open(path, /*create=*/true, /*truncate=*/true);
  DSIM_CHECK(fd != kNoFd);
  u64 done = 0;
  auto bytes = as_bytes_view(payload);
  while (done < bytes.size()) {
    const i64 n = co_await ctx.write(fd, bytes.subspan(done));
    DSIM_CHECK(n > 0);
    done += static_cast<u64>(n);
  }
  co_await ctx.close(fd);
}

}  // namespace dsim::apps
