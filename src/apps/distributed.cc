#include "apps/distributed.h"

#include "apps/app_util.h"
#include "mpi/mpi.h"
#include "util/assertx.h"

namespace dsim::apps {
namespace {

using mpi::Engine;
using sim::MemRef;
using sim::Task;

// Aggregates estimated from Fig. 4c; per-rank footprint = agg / np.
const std::vector<NasConfig> kNas = {
    {"ep", 800, 0.55, 8 * 1024, 2.0, 128},
    {"is", 4000, 0.965, 32 * 1024, 0.8, 128},   // huge mostly-zero buckets
    {"cg", 1700, 0.60, 24 * 1024, 1.5, 128},
    {"mg", 3200, 0.62, 48 * 1024, 1.2, 128},
    {"lu", 4500, 0.62, 16 * 1024, 1.8, 128},
    {"sp", 6800, 0.62, 40 * 1024, 1.6, 36},
    {"bt", 10000, 0.62, 40 * 1024, 1.8, 36},
};

/// Allocate the kernel's memory: real working arrays plus pattern ballast
/// sized so the image matches the paper's footprint.
void build_rank_memory(sim::ProcessCtx& ctx, const NasConfig& cfg, int rank,
                       int np) {
  if (ctx.seg("ballast")) return;  // restored
  const u64 per_rank =
      static_cast<u64>(cfg.agg_mb * 1024.0 * 1024.0 / np);
  const u64 working = 2ull << 20;  // real arrays the kernel touches
  const u64 ballast = per_rank > working ? per_rank - working : 0;
  auto& b = ctx.alloc("ballast", sim::MemKind::kHeap, ballast);
  const u64 zeros = static_cast<u64>(static_cast<double>(ballast) *
                                     cfg.zero_frac);
  if (zeros < ballast) {
    b.data.fill(zeros, ballast - zeros, sim::ExtentKind::kRand,
                mix_seed(0xba11, static_cast<u64>(rank)));
  }
  ctx.alloc("arrays", sim::MemKind::kHeap, working);
}

struct NasState {
  u64 iter = 0;
  u64 acc = 0;
  u8 stage = 0;
  u8 init_done = 0;
  u8 pad_[6] = {};  // explicit: stored state must have no padding bits
};

// nas <kernel> <iters> <result> <rank> <np> <nnodes>
Task<int> nas_main(sim::ProcessCtx& ctx) {
  const std::string kernel = args(ctx, 0, "ep");
  const u64 iters = static_cast<u64>(argi(ctx, 1, 50));
  const std::string result = args(ctx, 2, "nas");
  const auto ra = mpi::parse_rank_args(ctx, 3);
  const NasConfig& cfg = nas_config(kernel);

  build_rank_memory(ctx, cfg, ra.rank, ra.size);
  StateView<NasState> st(ctx);
  Engine mpi(ctx, ra.rank, ra.size, ra.nnodes,
             std::max<u64>(cfg.msg_bytes * 2, 1 << 20));
  NasState s = st.get();

  if (!s.init_done) {
    co_await mpi.init();
    s.init_done = 1;
    st.set(s);
  }

  MemRef arrays = buffer(ctx, "arrays", 2ull << 20);
  MemRef halo_out = buffer(ctx, "halo_out", cfg.msg_bytes);
  MemRef halo_in = buffer(ctx, "halo_in", cfg.msg_bytes);
  MemRef red = buffer(ctx, "red", 8 * sizeof(double));
  // IS uses an all-to-all key exchange.
  const u64 a2a_block = 2048;
  MemRef a2a_s = buffer(ctx, "a2a_s", a2a_block * static_cast<u64>(ra.size));
  MemRef a2a_r = buffer(ctx, "a2a_r", a2a_block * static_cast<u64>(ra.size));

  std::vector<double> v(256);
  while (s.iter < iters) {
    switch (s.stage) {
      case 0: {  // local compute touching real arrays
        co_await ctx.cpu_chunked(cfg.cpu_ms_per_it * 1e-3, 0);
        // EP: tally pseudo-random pairs; CG: sparse mat-vec flavored
        // update; grids: stencil sweep. All reduce to array writes.
        arrays.seg->data.read(arrays.off + (s.iter % 64) * 2048,
                              std::as_writable_bytes(std::span(v)));
        for (size_t i = 0; i < v.size(); ++i) {
          v[i] = v[i] * 0.75 +
                 static_cast<double>(payload_byte(s.acc, s.iter, i)) / 256.0;
        }
        arrays.seg->data.write(arrays.off + (s.iter % 64) * 2048,
                               std::as_bytes(std::span(v)));
        s.acc = mix_seed(s.acc, s.iter);
        s.stage = 1;
        st.set(s);
        break;
      }
      case 1: {  // halo / neighbour exchange, first half (EP skips it)
        if (kernel == "ep" || ra.size == 1) {
          s.stage = 3;
          st.set(s);
          break;
        }
        if (kernel == "is") {
          // alltoall persists its own progress in MpiPersist.
          co_await mpi.alltoall(a2a_s, a2a_r, a2a_block);
          s.stage = 3;
          st.set(s);
          break;
        }
        // Ring halo; rank parity breaks deadlocks. Each point-to-point op
        // gets its own stage so a restart never re-sends a completed half
        // (the restart contract, DESIGN.md §3.2).
        if (ra.rank % 2 == 0) {
          co_await mpi.send((ra.rank + 1) % ra.size, halo_out,
                            cfg.msg_bytes);
        } else {
          co_await mpi.recv((ra.rank + ra.size - 1) % ra.size, halo_in,
                            cfg.msg_bytes);
        }
        s.stage = 2;
        st.set(s);
        break;
      }
      case 2: {  // halo exchange, second half
        if (ra.rank % 2 == 0) {
          co_await mpi.recv((ra.rank + ra.size - 1) % ra.size, halo_in,
                            cfg.msg_bytes);
        } else {
          co_await mpi.send((ra.rank + 1) % ra.size, halo_out,
                            cfg.msg_bytes);
        }
        s.stage = 3;
        st.set(s);
        break;
      }
      case 3: {  // periodic residual reduction
        if (s.iter % 4 == 3 && ra.size > 1) {
          ctx.store<double>(red, static_cast<double>(s.acc % 1000));
          co_await mpi.allreduce_sum(red, 1);
        }
        s.stage = 0;
        s.iter++;
        st.set(s);
        break;
      }
    }
  }
  // Final checksum agreement.
  if (s.stage != 9) {
    ctx.store<double>(red, static_cast<double>(s.acc % 100000));
    if (ra.size > 1) co_await mpi.allreduce_sum(red, 1);
    if (ra.rank == 0) {
      char out[96];
      std::snprintf(out, sizeof out, "sum=%.0f iters=%llu np=%d",
                    ctx.load<double>(red),
                    static_cast<unsigned long long>(s.iter), ra.size);
      co_await write_result(ctx, result, out);
    }
    s.stage = 9;
    st.set(s);
  }
  co_return 0;
}

// hello <result> <rank> <np> <nnodes> — the Fig. 4 "Baseline" rows.
Task<int> hello_main(sim::ProcessCtx& ctx) {
  const std::string result = args(ctx, 0, "hello");
  const auto ra = mpi::parse_rank_args(ctx, 1);
  if (!ctx.seg("heap")) {
    auto& heap = ctx.alloc("heap", sim::MemKind::kHeap, 4ull << 20);
    heap.data.fill(2ull << 20, 2ull << 20, sim::ExtentKind::kRand, 0x4e);
  }
  StateView<NasState> st(ctx);
  Engine mpi(ctx, ra.rank, ra.size, ra.nnodes);
  NasState s = st.get();
  if (!s.init_done) {
    co_await mpi.init();
    s.init_done = 1;
    st.set(s);
  }
  // Idle with a heartbeat until the horizon (benches checkpoint here; the
  // bound keeps test runs finite at ~20 virtual seconds).
  while (s.iter < 2000) {
    co_await ctx.sleep(10 * timeconst::kMillisecond);
    if (s.iter % 50 == 49 && ra.size > 1) co_await mpi.barrier();
    s.iter++;
    st.set(s);
  }
  if (s.stage != 9) {
    if (ra.rank == 0) co_await write_result(ctx, result, "hello done");
    s.stage = 9;
    st.set(s);
  }
  co_return 0;
}

// ---------------------------------------------------------------------------
// pargeant4 <events> <mb_per_worker> <result> <rank> <np> <nnodes>
// TOP-C master/worker: rank 0 hands out event batches; workers simulate.
// ---------------------------------------------------------------------------

struct PG4State {
  u64 next_event = 0;   // master: next batch to hand out; worker: current
  u64 done_events = 0;
  u64 acc = 0;
  i32 finished_workers = 0;
  i32 w = 1;            // master: worker currently being served (persisted —
                        // a restart must resume the same round-robin slot)
  u8 stage = 0;
  u8 init_done = 0;
  u8 pad_[6] = {};  // explicit: stored state must have no padding bits
};

Task<int> pargeant4_main(sim::ProcessCtx& ctx) {
  const u64 events = static_cast<u64>(argi(ctx, 0, 64));
  const double mb = static_cast<double>(argi(ctx, 1, 20));
  const std::string result = args(ctx, 2, "pargeant4");
  const auto ra = mpi::parse_rank_args(ctx, 3);

  if (!ctx.seg("ballast")) {
    const u64 bytes = static_cast<u64>(mb * 1024 * 1024);
    auto& b = ctx.alloc("ballast", sim::MemKind::kHeap, bytes);
    b.data.fill(bytes * 62 / 100, bytes - bytes * 62 / 100,
                sim::ExtentKind::kRand, mix_seed(0x9ea4, ra.rank));
  }
  StateView<PG4State> st(ctx);
  Engine mpi(ctx, ra.rank, ra.size, ra.nnodes);
  MemRef msg = buffer(ctx, "msg", 16);
  PG4State s = st.get();
  if (!s.init_done) {
    co_await mpi.init();
    s.init_done = 1;
    st.set(s);
  }

  if (ra.rank == 0) {
    // Master: round-robin event batches; a 16-byte message per assignment.
    // The current worker slot lives in the state struct so a restarted
    // master resumes exactly the round-robin position it was suspended at.
    while (s.finished_workers < ra.size - 1) {
      if (s.stage == 0) {
        const u64 assign = s.next_event < events ? s.next_event : ~0ull;
        ctx.store<u64>(msg, assign);
        ctx.store<u64>(msg.at(8), s.acc);
        co_await mpi.send(s.w, msg, 16);
        if (assign != ~0ull) {
          s.next_event++;
        } else {
          s.finished_workers++;
        }
        s.stage = 1;
        st.set(s);
      }
      co_await mpi.recv(s.w, msg, 16);
      s.acc = mix_seed(s.acc, ctx.load<u64>(msg));
      s.stage = 0;
      s.w = (s.w % (ra.size - 1)) + 1;
      st.set(s);
    }
    char out[96];
    std::snprintf(out, sizeof out, "acc=%016llx events=%llu",
                  static_cast<unsigned long long>(s.acc),
                  static_cast<unsigned long long>(s.next_event));
    co_await write_result(ctx, result, out);
  } else {
    // Worker: receive an assignment, simulate particle transport, reply.
    while (s.stage != 9) {
      if (s.stage == 0) {
        co_await mpi.recv(0, msg, 16);
        s.next_event = ctx.load<u64>(msg);
        s.stage = (s.next_event == ~0ull) ? 3 : 1;
        st.set(s);
      }
      if (s.stage == 1) {
        co_await ctx.cpu_chunked(4e-3, 0);  // Geant4 event simulation
        s.acc = mix_seed(s.acc, s.next_event);
        s.done_events++;
        s.stage = 2;
        st.set(s);
      }
      if (s.stage == 2) {
        ctx.store<u64>(msg, s.acc);
        ctx.store<u64>(msg.at(8), s.done_events);
        co_await mpi.send(0, msg, 16);
        s.stage = 0;
        st.set(s);
      }
      if (s.stage == 3) {
        ctx.store<u64>(msg, s.acc);
        ctx.store<u64>(msg.at(8), s.done_events);
        co_await mpi.send(0, msg, 16);
        s.stage = 9;
        st.set(s);
      }
    }
  }
  co_return 0;
}

// ---------------------------------------------------------------------------
// iPython (sockets directly): controller + engines.
// ipython_controller <engines> <tasks> <mode shell|demo> <result>
// ipython_engine <controller-node> <index>
// ---------------------------------------------------------------------------

struct IpyCtlState {
  i32 lfd = kNoFd;
  i32 efd[64] = {};
  i32 accepted = 0;
  i32 spawned = 0;
  i32 stopped = 0;
  u64 task = 0;
  u64 acc = 0;
  u8 stage = 0;
  u8 pad_[7] = {};  // explicit: stored state must have no padding bits
};

constexpr u16 kIpyPort = 23000;

Task<int> ipython_controller_main(sim::ProcessCtx& ctx) {
  const int engines = static_cast<int>(argi(ctx, 0, 4));
  const u64 tasks = static_cast<u64>(argi(ctx, 1, 32));
  const std::string mode = args(ctx, 2, "demo");
  const std::string result = args(ctx, 3, "ipython");
  DSIM_CHECK(engines <= 64);

  if (!ctx.seg("heap")) {
    auto& heap = ctx.alloc("heap", sim::MemKind::kHeap, 18ull << 20);
    heap.data.fill(9ull << 20, 9ull << 20, sim::ExtentKind::kRand, 0x1b);
  }
  StateView<IpyCtlState> st(ctx);
  MemRef msg = buffer(ctx, "msg", 16);
  IpyCtlState s = st.get();

  if (ctx.phase() == 0) {
    const Fd lfd = co_await ctx.socket();
    DSIM_CHECK(co_await ctx.bind(lfd, kIpyPort));
    co_await ctx.listen(lfd);
    s.lfd = lfd;
    st.set(s);
    ctx.phase() = 1;
  }
  while (s.spawned < engines) {
    std::vector<std::string> argv{std::to_string(ctx.process().node()),
                                  std::to_string(s.spawned)};
    co_await ctx.ssh(
        static_cast<NodeId>(s.spawned % ctx.kernel().num_nodes()),
        "ipython_engine", std::move(argv));
    s.spawned++;
    st.set(s);
  }
  while (s.accepted < engines) {
    const Fd fd = co_await ctx.accept(s.lfd);
    s.efd[s.accepted] = fd;
    s.accepted++;
    st.set(s);
  }
  if (mode == "shell") {
    // Idle interactive shell: heartbeat only (the paper checkpoints it at
    // rest). Runs until externally killed or a long horizon elapses.
    while (s.task < 100000) {
      co_await ctx.sleep(20 * timeconst::kMillisecond);
      s.task++;
      st.set(s);
      if (s.task >= 500) break;  // finite for tests
    }
  } else {
    // "Parallel computing" demo: scatter tasks, gather results.
    while (s.task < tasks) {
      const int e = static_cast<int>(s.task % engines);
      if (s.stage == 0) {
        ctx.store<u64>(msg, s.task);
        co_await ctx.write_exact(s.efd[e], msg, 16, 0);
        s.stage = 1;
        st.set(s);
      }
      co_await ctx.read_exact(s.efd[e], msg, 16, 1);
      s.acc = mix_seed(s.acc, ctx.load<u64>(msg));
      s.stage = 0;
      s.task++;
      st.set(s);
    }
    // Stop engines.
    while (s.stopped < engines) {
      ctx.store<u64>(msg, ~0ull);
      co_await ctx.write_exact(s.efd[s.stopped], msg, 16, 0);
      s.stopped++;
      st.set(s);
    }
  }
  char out[96];
  std::snprintf(out, sizeof out, "acc=%016llx tasks=%llu",
                static_cast<unsigned long long>(s.acc),
                static_cast<unsigned long long>(s.task));
  co_await write_result(ctx, result, out);
  co_return 0;
}

struct IpyEngState {
  u64 acc = 0;
  i32 fd = kNoFd;
  u8 stage = 0;
  u8 pad_[3] = {};  // explicit: stored state must have no padding bits
};

Task<int> ipython_engine_main(sim::ProcessCtx& ctx) {
  const NodeId ctl_node = static_cast<NodeId>(argi(ctx, 0, 0));
  if (!ctx.seg("heap")) {
    auto& heap = ctx.alloc("heap", sim::MemKind::kHeap, 12ull << 20);
    heap.data.fill(6ull << 20, 6ull << 20, sim::ExtentKind::kRand, 0xe9);
  }
  StateView<IpyEngState> st(ctx);
  MemRef msg = buffer(ctx, "msg", 16);
  IpyEngState s = st.get();
  if (ctx.phase() == 0) {
    const Fd fd = co_await ctx.socket();
    s.fd = fd;
    st.set(s);
    ctx.phase() = 1;
  }
  if (ctx.phase() == 1) {
    if (sim::TcpVNode* v = ctx.fd_tcp(s.fd);
        v && v->state == sim::TcpVNode::State::kRaw) {
      while (!co_await ctx.connect(s.fd, sim::SockAddr{ctl_node, kIpyPort})) {
        co_await ctx.sleep(2 * timeconst::kMillisecond);
      }
    }
    ctx.phase() = 2;
  }
  while (true) {
    if (s.stage == 0) {
      co_await ctx.read_exact(s.fd, msg, 16, 0);
      const u64 task = ctx.load<u64>(msg);
      if (task == ~0ull) co_return 0;
      s.stage = 1;
      st.set(s);
    }
    if (s.stage == 1) {
      co_await ctx.cpu_chunked(2e-3, 1);
      s.acc = mix_seed(s.acc, ctx.load<u64>(msg));
      s.stage = 2;
      st.set(s);
    }
    ctx.store<u64>(msg, s.acc);
    co_await ctx.write_exact(s.fd, msg, 16, 2);
    s.stage = 0;
    st.set(s);
  }
}

// ---------------------------------------------------------------------------
// memhog <mb_per_rank> <result> <rank> <np> <nnodes> — Fig. 6 synthetic:
// "allocating random data" (incompressible), long-lived, periodic barriers.
// ---------------------------------------------------------------------------

Task<int> memhog_main(sim::ProcessCtx& ctx) {
  const double mb = static_cast<double>(argi(ctx, 0, 64));
  const std::string result = args(ctx, 1, "memhog");
  const auto ra = mpi::parse_rank_args(ctx, 2);
  if (!ctx.seg("ballast")) {
    const u64 bytes = static_cast<u64>(mb * 1024 * 1024);
    auto& b = ctx.alloc("ballast", sim::MemKind::kHeap, bytes);
    b.data.fill(0, bytes, sim::ExtentKind::kRand, mix_seed(0xf16, ra.rank));
  }
  StateView<NasState> st(ctx);
  Engine mpi(ctx, ra.rank, ra.size, ra.nnodes);
  NasState s = st.get();
  if (!s.init_done) {
    co_await mpi.init();
    s.init_done = 1;
    st.set(s);
  }
  while (s.iter < 3000) {
    co_await ctx.sleep(10 * timeconst::kMillisecond);
    if (s.iter % 100 == 99) co_await mpi.barrier();
    s.iter++;
    st.set(s);
  }
  if (ra.rank == 0 && s.stage != 9) {
    co_await write_result(ctx, result, "memhog done");
    s.stage = 9;
    st.set(s);
  }
  co_return 0;
}

// ---------------------------------------------------------------------------
// chombo <iters> <mb> <result> <rank> <np> <nnodes> — AMR-flavored stencil
// used for the DejaVu comparison (§2): compute + halo exchange per step.
// ---------------------------------------------------------------------------

Task<int> chombo_main(sim::ProcessCtx& ctx) {
  const u64 iters = static_cast<u64>(argi(ctx, 0, 100));
  const double mb = static_cast<double>(argi(ctx, 1, 40));
  const std::string result = args(ctx, 2, "chombo");
  const auto ra = mpi::parse_rank_args(ctx, 3);
  if (!ctx.seg("ballast")) {
    const u64 bytes = static_cast<u64>(mb * 1024 * 1024);
    auto& b = ctx.alloc("ballast", sim::MemKind::kHeap, bytes);
    b.data.fill(bytes / 2, bytes - bytes / 2, sim::ExtentKind::kRand,
                mix_seed(0xc0b0, ra.rank));
  }
  StateView<NasState> st(ctx);
  Engine mpi(ctx, ra.rank, ra.size, ra.nnodes, 1 << 20);
  // Chombo-class AMR: heavy per-step compute, modest halos (the DejaVu
  // comparison's overhead ratio depends on this compute:comm balance).
  constexpr u64 kHalo = 8 * 1024;
  MemRef halo = buffer(ctx, "halo", kHalo);
  NasState s = st.get();
  if (!s.init_done) {
    co_await mpi.init();
    s.init_done = 1;
    st.set(s);
  }
  while (s.iter < iters) {
    if (s.stage == 0) {
      co_await ctx.cpu_chunked(40e-3, 0);
      s.stage = 1;
      st.set(s);
    }
    if (ra.size > 1) {
      const int right = (ra.rank + 1) % ra.size;
      const int left = (ra.rank + ra.size - 1) % ra.size;
      if (s.stage == 1) {
        if (ra.rank % 2 == 0) {
          co_await mpi.send(right, halo, kHalo);
        } else {
          co_await mpi.recv(left, halo, kHalo);
        }
        s.stage = 2;
        st.set(s);
      }
      if (ra.rank % 2 == 0) {
        co_await mpi.recv(left, halo, kHalo);
      } else {
        co_await mpi.send(right, halo, kHalo);
      }
    }
    s.stage = 0;
    s.iter++;
    st.set(s);
  }
  if (ra.rank == 0 && s.stage != 9) {
    char out[64];
    std::snprintf(out, sizeof out, "iters=%llu",
                  static_cast<unsigned long long>(s.iter));
    co_await write_result(ctx, result, out);
    s.stage = 9;
    st.set(s);
  }
  co_return 0;
}

}  // namespace

const NasConfig& nas_config(const std::string& name) {
  for (const auto& c : kNas) {
    if (c.name == name) return c;
  }
  DSIM_UNREACHABLE("unknown NAS kernel");
}

void register_distributed_programs(sim::Kernel& k) {
  auto add = [&](const char* name, auto fn) {
    sim::Program p;
    p.name = name;
    p.main = fn;
    k.programs().add(std::move(p));
  };
  add("nas", nas_main);
  add("hello", hello_main);
  add("pargeant4", pargeant4_main);
  add("ipython_controller", ipython_controller_main);
  add("ipython_engine", ipython_engine_main);
  add("memhog", memhog_main);
  add("chombo", chombo_main);
}

}  // namespace dsim::apps
