#include "rpc/rpc.h"

#include <algorithm>

#include "sim/model_params.h"
#include "util/assertx.h"

namespace dsim::rpc {

namespace {

/// Every endpoint-side charge (dispatch CPU, response NIC) funnels through
/// this check: a dead node must never be charged for work — it would
/// silently corrupt every latency result downstream of the failure. The
/// graceful path is the caller's liveness branch; this is the invariant
/// that catches any future charge site that forgets the branch.
void assert_chargeable(const NodeHealth& health, NodeId node,
                       const char* what) {
  DSIM_CHECK_MSG(health.up(node), what);
}

}  // namespace

void RpcFabric::call(NodeId from, NodeId to, u64 request_bytes,
                     u64 response_bytes, Handler serve,
                     std::function<void()> done,
                     std::function<void()> failed, obs::TraceContext tctx) {
  stats_.calls++;
  stats_.net_bytes += request_bytes;
  const SimTime sent = loop_.now();
  obs::Tracer* tr = loop_.tracer();
  const u64 req_span =
      (tr && tctx.trace_id)
          ? tr->begin("rpc.request_net", from, "nic", sent, tctx)
          : 0;
  // One shared frame per call: the three liveness checkpoints (arrival,
  // dispatch, reply) share the closure set, and whichever outcome fires
  // first consumes it.
  struct Frame {
    Handler serve;
    std::function<void()> done;
    std::function<void()> failed;
  };
  auto fr = std::make_shared<Frame>(
      Frame{std::move(serve), std::move(done), std::move(failed)});
  auto fail = [this, fr, tctx] {
    stats_.failed_calls++;
    // A failed call can never tile its caller's root span: some stage is
    // missing (the request died mid-flight) and any replay will duplicate
    // the stages that did run.
    if (tctx.trace_id) {
      if (obs::Tracer* t = loop_.tracer()) t->mark_untiled(tctx.trace_id);
    }
    if (fr->failed) loop_.post_now(std::move(fr->failed));
  };
  net_.transfer(
      from, to, request_bytes,
      [this, from, to, response_bytes, sent, fr, fail, tctx,
       req_span]() mutable {
        stats_.net_wait_seconds += to_seconds(loop_.now() - sent);
        obs::Tracer* tr = loop_.tracer();
        if (req_span && tr) tr->end(req_span, loop_.now());
        if (!health_->up(to)) {
          // Dead on arrival: the request crossed the caller's NIC and fell
          // on the floor. No endpoint charge of any kind.
          fail();
          return;
        }
        // Dispatch CPU, serialized per endpoint node: requests that arrived
        // together queue behind one message processor. The CPU is accounted
        // when the dispatch actually runs (below), so a node that dies
        // while requests sit in its dispatch queue is never charged for
        // work it did not do.
        SimTime& busy = msg_cpu_busy_[to];
        busy = std::max(loop_.now(), busy) + sim::params::kRpcMessageCpu;
        // The span covers queueing behind the message processor plus the
        // dispatch CPU itself: [arrival, dispatch-runs).
        const u64 cpu_span =
            (tr && tctx.trace_id)
                ? tr->begin("rpc.dispatch_cpu", to, "msgcpu", loop_.now(),
                            tctx)
                : 0;
        loop_.post_at(
            busy, [this, from, to, response_bytes, fr, fail, tctx,
                   cpu_span]() mutable {
              obs::Tracer* tr = loop_.tracer();
              if (cpu_span && tr) tr->end(cpu_span, loop_.now());
              if (!health_->up(to)) {
                fail();  // died before dispatch: CPU never charged
                return;
              }
              assert_chargeable(*health_, to,
                                "RPC dispatch CPU charged to a dead node");
              stats_.endpoint_cpu_seconds +=
                  to_seconds(sim::params::kRpcMessageCpu);
              fr->serve([this, from, to, response_bytes, fr, fail,
                         tctx]() mutable {
                if (!health_->up(to)) {
                  fail();  // died while serving: the response never leaves
                  return;
                }
                assert_chargeable(
                    *health_, to,
                    "RPC response charged to a dead node's NIC");
                stats_.net_bytes += response_bytes;
                const SimTime replied = loop_.now();
                obs::Tracer* tr = loop_.tracer();
                const u64 resp_span =
                    (tr && tctx.trace_id)
                        ? tr->begin("rpc.response_net", to, "nic", replied,
                                    tctx)
                        : 0;
                net_.transfer(to, from, response_bytes,
                              [this, replied, fr, resp_span] {
                                stats_.net_wait_seconds +=
                                    to_seconds(loop_.now() - replied);
                                if (resp_span) {
                                  if (obs::Tracer* t = loop_.tracer()) {
                                    t->end(resp_span, loop_.now());
                                  }
                                }
                                fr->done();
                              });
              });
            });
      });
}

}  // namespace dsim::rpc
