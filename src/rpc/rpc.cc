#include "rpc/rpc.h"

#include <algorithm>

#include "sim/model_params.h"
#include "util/assertx.h"

namespace dsim::rpc {

namespace {

/// Every endpoint-side charge (dispatch CPU, response NIC) funnels through
/// this check: a dead node must never be charged for work — it would
/// silently corrupt every latency result downstream of the failure. The
/// graceful path is the caller's liveness branch; this is the invariant
/// that catches any future charge site that forgets the branch.
void assert_chargeable(const NodeHealth& health, NodeId node,
                       const char* what) {
  DSIM_CHECK_MSG(health.up(node), what);
}

}  // namespace

void RpcFabric::call(NodeId from, NodeId to, u64 request_bytes,
                     u64 response_bytes, Handler serve,
                     std::function<void()> done,
                     std::function<void()> failed) {
  stats_.calls++;
  stats_.net_bytes += request_bytes;
  const SimTime sent = loop_.now();
  // One shared frame per call: the three liveness checkpoints (arrival,
  // dispatch, reply) share the closure set, and whichever outcome fires
  // first consumes it.
  struct Frame {
    Handler serve;
    std::function<void()> done;
    std::function<void()> failed;
  };
  auto fr = std::make_shared<Frame>(
      Frame{std::move(serve), std::move(done), std::move(failed)});
  auto fail = [this, fr] {
    stats_.failed_calls++;
    if (fr->failed) loop_.post_now(std::move(fr->failed));
  };
  net_.transfer(
      from, to, request_bytes,
      [this, from, to, response_bytes, sent, fr, fail]() mutable {
        stats_.net_wait_seconds += to_seconds(loop_.now() - sent);
        if (!health_->up(to)) {
          // Dead on arrival: the request crossed the caller's NIC and fell
          // on the floor. No endpoint charge of any kind.
          fail();
          return;
        }
        // Dispatch CPU, serialized per endpoint node: requests that arrived
        // together queue behind one message processor. The CPU is accounted
        // when the dispatch actually runs (below), so a node that dies
        // while requests sit in its dispatch queue is never charged for
        // work it did not do.
        SimTime& busy = msg_cpu_busy_[to];
        busy = std::max(loop_.now(), busy) + sim::params::kRpcMessageCpu;
        loop_.post_at(
            busy, [this, from, to, response_bytes, fr, fail]() mutable {
              if (!health_->up(to)) {
                fail();  // died before dispatch: CPU never charged
                return;
              }
              assert_chargeable(*health_, to,
                                "RPC dispatch CPU charged to a dead node");
              stats_.endpoint_cpu_seconds +=
                  to_seconds(sim::params::kRpcMessageCpu);
              fr->serve([this, from, to, response_bytes, fr,
                         fail]() mutable {
                if (!health_->up(to)) {
                  fail();  // died while serving: the response never leaves
                  return;
                }
                assert_chargeable(
                    *health_, to,
                    "RPC response charged to a dead node's NIC");
                stats_.net_bytes += response_bytes;
                const SimTime replied = loop_.now();
                net_.transfer(to, from, response_bytes,
                              [this, replied, fr] {
                                stats_.net_wait_seconds +=
                                    to_seconds(loop_.now() - replied);
                                fr->done();
                              });
              });
            });
      });
}

}  // namespace dsim::rpc
