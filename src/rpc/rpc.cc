#include "rpc/rpc.h"

#include <algorithm>

#include "sim/model_params.h"

namespace dsim::rpc {

void RpcFabric::call(NodeId from, NodeId to, u64 request_bytes,
                     u64 response_bytes, Handler serve,
                     std::function<void()> done) {
  stats_.calls++;
  stats_.net_bytes += request_bytes + response_bytes;
  const SimTime sent = loop_.now();
  net_.transfer(
      from, to, request_bytes,
      [this, from, to, response_bytes, sent, serve = std::move(serve),
       done = std::move(done)]() mutable {
        stats_.net_wait_seconds += to_seconds(loop_.now() - sent);
        // Dispatch CPU, serialized per endpoint node: requests that arrived
        // together queue behind one message processor.
        SimTime& busy = msg_cpu_busy_[to];
        busy = std::max(loop_.now(), busy) + sim::params::kRpcMessageCpu;
        stats_.endpoint_cpu_seconds +=
            to_seconds(sim::params::kRpcMessageCpu);
        loop_.post_at(
            busy, [this, from, to, response_bytes, serve = std::move(serve),
                   done = std::move(done)]() mutable {
              serve([this, from, to, response_bytes,
                     done = std::move(done)]() mutable {
                const SimTime replied = loop_.now();
                net_.transfer(to, from, response_bytes,
                              [this, replied, done = std::move(done)] {
                                stats_.net_wait_seconds +=
                                    to_seconds(loop_.now() - replied);
                                done();
                              });
              });
            });
      });
}

}  // namespace dsim::rpc
