// Request/response RPC fabric over the simulated cluster network.
//
// PR 3's chunk-store service queued requests that *teleported* to it: no NIC
// hop, no message CPU — the storage queue reproduced the Fig.-5b contention
// shape while the paper's actual bottleneck (coordinator/peer messages over
// Gigabit Ethernet, §4.3) was missing entirely. This layer makes a service
// request a real message:
//
//   caller NIC egress          endpoint message CPU        endpoint NIC
//   (request_bytes)     --->   (serialized per node)  ---> (response_bytes)
//        |                          |                           |
//        +--- sim::Network hop -----+--- handler runs here -----+--> done()
//
// Each call charges the caller's NIC egress device for the request, a
// per-message CPU cost serialized at the endpoint node (two shards on one
// node share one message processor, exactly as two services on one host
// share its cores), and the endpoint's NIC for the response. Transfers ride
// the same egress devices as application sockets, so RPC traffic contends
// with the computation's own traffic and inherits Network::set_jitter.
//
// The fabric is deliberately one-way-at-a-time and callback-shaped: the
// chunk-store service composes it with per-shard FIFO queues, and per-shard
// ordering holds because every stage (caller egress, message CPU, shard
// queue, endpoint egress) is itself FIFO.
#pragma once

#include <functional>
#include <map>

#include "sim/event_loop.h"
#include "sim/net.h"
#include "util/types.h"

namespace dsim::rpc {

/// Cumulative fabric statistics. The coordinator snapshots deltas into each
/// CkptRound so per-round network bytes/waits on the lookup path are
/// observable.
struct RpcStats {
  u64 calls = 0;
  u64 net_bytes = 0;            // request + response bytes over the fabric
  double net_wait_seconds = 0;  // cumulative in-flight time, both hops
  double endpoint_cpu_seconds = 0;
};

class RpcFabric {
 public:
  RpcFabric(sim::EventLoop& loop, sim::Network& net)
      : loop_(loop), net_(net) {}

  using Reply = std::function<void()>;
  /// Runs at the endpoint once the request hop and message CPU are paid;
  /// invokes `reply` when the response payload is ready (the fabric then
  /// charges the return hop).
  using Handler = std::function<void(Reply reply)>;

  /// Issue one RPC from node `from` to node `to`. `done` fires back at the
  /// caller after the response hop completes. `from == to` rides the
  /// loopback path (a service colocated with its client still pays message
  /// CPU, just not the wire).
  void call(NodeId from, NodeId to, u64 request_bytes, u64 response_bytes,
            Handler serve, std::function<void()> done);

  const RpcStats& stats() const { return stats_; }

 private:
  sim::EventLoop& loop_;
  sim::Network& net_;
  /// Per-node serial message processor: the busy-until chain that makes N
  /// concurrent requests to one endpoint node pay their dispatch CPU one
  /// after another.
  std::map<NodeId, SimTime> msg_cpu_busy_;
  RpcStats stats_;
};

}  // namespace dsim::rpc
