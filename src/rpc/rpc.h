// Request/response RPC fabric over the simulated cluster network.
//
// PR 3's chunk-store service queued requests that *teleported* to it: no NIC
// hop, no message CPU — the storage queue reproduced the Fig.-5b contention
// shape while the paper's actual bottleneck (coordinator/peer messages over
// Gigabit Ethernet, §4.3) was missing entirely. This layer makes a service
// request a real message:
//
//   caller NIC egress          endpoint message CPU        endpoint NIC
//   (request_bytes)     --->   (serialized per node)  ---> (response_bytes)
//        |                          |                           |
//        +--- sim::Network hop -----+--- handler runs here -----+--> done()
//
// Each call charges the caller's NIC egress device for the request, a
// per-message CPU cost serialized at the endpoint node (two shards on one
// node share one message processor, exactly as two services on one host
// share its cores), and the endpoint's NIC for the response. Transfers ride
// the same egress devices as application sockets, so RPC traffic contends
// with the computation's own traffic and inherits Network::set_jitter.
//
// Node death is first-class (PR 5): a NodeHealth map — shared between every
// fabric of one cluster, so the membership service's heartbeat fabric and
// the chunk store's request fabric agree on who is up — marks dead
// endpoints. A call whose target dies before the response leaves fires its
// `failed` callback instead of `done`, and nothing past the point of death
// is charged: not the endpoint's message CPU, not its NIC (asserted — a
// dead node burning CPU would silently corrupt every latency result
// downstream). The request still crosses the *caller's* NIC: the caller
// cannot know the target died until the silence.
//
// The fabric is deliberately one-way-at-a-time and callback-shaped: the
// chunk-store service composes it with per-shard FIFO queues, and per-shard
// ordering holds because every stage (caller egress, message CPU, shard
// queue, endpoint egress) is itself FIFO.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "obs/trace.h"
#include "sim/event_loop.h"
#include "sim/net.h"
#include "util/types.h"

namespace dsim::rpc {

/// Ground truth of node liveness for RPC purposes, shared by every fabric
/// of one cluster (the membership heartbeat fabric and the chunk-store
/// request fabric must agree). Modeled at the RPC layer, not the network:
/// the simulations that kill a "storage" node may keep its compute
/// processes running until the experimenter kills them separately.
class NodeHealth {
 public:
  explicit NodeHealth(int num_nodes)
      : up_(static_cast<size_t>(num_nodes), true) {}
  void fail(NodeId n) { up_.at(static_cast<size_t>(n)) = false; }
  void revive(NodeId n) { up_.at(static_cast<size_t>(n)) = true; }
  bool up(NodeId n) const {
    return n >= 0 && static_cast<size_t>(n) < up_.size() &&
           up_[static_cast<size_t>(n)];
  }
  int num_nodes() const { return static_cast<int>(up_.size()); }

 private:
  std::vector<bool> up_;
};

/// Cumulative fabric statistics. The coordinator snapshots deltas into each
/// CkptRound so per-round network bytes/waits on the lookup path are
/// observable.
struct RpcStats {
  u64 calls = 0;
  u64 net_bytes = 0;            // request + response bytes over the fabric
  double net_wait_seconds = 0;  // cumulative in-flight time, both hops
  double endpoint_cpu_seconds = 0;
  u64 failed_calls = 0;  // target died before the response could leave
};

class RpcFabric {
 public:
  /// `health` is the shared liveness map; a fabric constructed without one
  /// (standalone tests) gets a private all-up map.
  RpcFabric(sim::EventLoop& loop, sim::Network& net,
            std::shared_ptr<NodeHealth> health = nullptr)
      : loop_(loop),
        net_(net),
        health_(health ? std::move(health)
                       : std::make_shared<NodeHealth>(net.num_nodes())) {}

  using Reply = std::function<void()>;
  /// Runs at the endpoint once the request hop and message CPU are paid;
  /// invokes `reply` when the response payload is ready (the fabric then
  /// charges the return hop).
  using Handler = std::function<void(Reply reply)>;

  /// Issue one RPC from node `from` to node `to`. `done` fires back at the
  /// caller after the response hop completes. `from == to` rides the
  /// loopback path (a service colocated with its client still pays message
  /// CPU, just not the wire). If `to` is (or goes) down before the response
  /// leaves its NIC, `failed` fires at the caller instead — no CPU or NIC
  /// charge ever lands on the dead node.
  ///
  /// `tctx` (optional) threads a trace through the call: when the loop has
  /// a tracer and tctx.trace_id != 0, the fabric emits `rpc.request_net`
  /// [sent, arrival], `rpc.dispatch_cpu` [arrival, dispatch] and
  /// `rpc.response_net` [replied, done] child spans, and marks the trace
  /// untiled if the call fails (the request died mid-flight, so its stage
  /// spans cannot tile the caller's root span).
  void call(NodeId from, NodeId to, u64 request_bytes, u64 response_bytes,
            Handler serve, std::function<void()> done,
            std::function<void()> failed = {},
            obs::TraceContext tctx = {});

  const RpcStats& stats() const { return stats_; }
  const std::shared_ptr<NodeHealth>& health() const { return health_; }

 private:
  sim::EventLoop& loop_;
  sim::Network& net_;
  std::shared_ptr<NodeHealth> health_;
  /// Per-node serial message processor: the busy-until chain that makes N
  /// concurrent requests to one endpoint node pay their dispatch CPU one
  /// after another.
  std::map<NodeId, SimTime> msg_cpu_busy_;
  RpcStats stats_;
};

}  // namespace dsim::rpc
