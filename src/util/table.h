// ASCII table / CSV emission for the benchmark harness.
//
// Each bench binary regenerates one of the paper's tables or figures; the
// figure benches print one row per data point (series are columns), so the
// paper plot can be re-drawn from the CSV with any plotting tool.
#pragma once

#include <string>
#include <vector>

namespace dsim {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Render as an aligned ASCII table.
  std::string to_ascii() const;
  /// Render as CSV (no quoting needed for our content).
  std::string to_csv() const;
  /// Print ASCII to stdout with a title banner.
  void print(const std::string& title) const;

  static std::string fmt(double v, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dsim
