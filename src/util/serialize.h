// Binary serialization used by checkpoint images, connection tables and
// coordinator protocol messages.
//
// The format is a simple explicit little-endian byte stream: fixed-width
// integers, length-prefixed blobs/strings, no implicit padding. Every
// serialized structure in dmtcp-sim round-trips through these two classes,
// which keeps image formats independent of host struct layout.
#pragma once

#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/assertx.h"
#include "util/types.h"

namespace dsim {

/// Append-only binary writer.
class ByteWriter {
 public:
  void put_u8(u8 v) { buf_.push_back(static_cast<std::byte>(v)); }
  void put_u16(u16 v) { put_le(v); }
  void put_u32(u32 v) { put_le(v); }
  void put_u64(u64 v) { put_le(v); }
  void put_i32(i32 v) { put_le(static_cast<u32>(v)); }
  void put_i64(i64 v) { put_le(static_cast<u64>(v)); }
  void put_f64(double v) {
    u64 bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_u64(bits);
  }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  void put_bytes(std::span<const std::byte> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  /// Length-prefixed blob.
  void put_blob(std::span<const std::byte> data) {
    put_u64(data.size());
    put_bytes(data);
  }
  void put_string(std::string_view s) {
    put_u64(s.size());
    buf_.insert(buf_.end(), reinterpret_cast<const std::byte*>(s.data()),
                reinterpret_cast<const std::byte*>(s.data() + s.size()));
  }

  std::span<const std::byte> bytes() const { return buf_; }
  std::vector<std::byte> take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void put_le(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
    }
  }
  std::vector<std::byte> buf_;
};

/// Sequential binary reader over a borrowed buffer.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  u8 get_u8() { return static_cast<u8>(take(1)[0]); }
  u16 get_u16() { return get_le<u16>(); }
  u32 get_u32() { return get_le<u32>(); }
  u64 get_u64() { return get_le<u64>(); }
  i32 get_i32() { return static_cast<i32>(get_le<u32>()); }
  i64 get_i64() { return static_cast<i64>(get_le<u64>()); }
  double get_f64() {
    u64 bits = get_u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  bool get_bool() { return get_u8() != 0; }

  std::vector<std::byte> get_blob() {
    u64 n = get_u64();
    auto s = take(n);
    return {s.begin(), s.end()};
  }
  std::string get_string() {
    u64 n = get_u64();
    auto s = take(n);
    return {reinterpret_cast<const char*>(s.data()), s.size()};
  }
  std::span<const std::byte> get_bytes(size_t n) { return take(n); }

  size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return remaining() == 0; }
  /// Current read position (for checksumming consumed ranges).
  size_t pos() const { return pos_; }
  /// Borrowed view of [start, start+len) of the underlying buffer.
  std::span<const std::byte> window(size_t start, size_t len) const {
    DSIM_CHECK_MSG(start + len <= data_.size(), "window out of range");
    return data_.subspan(start, len);
  }

 private:
  std::span<const std::byte> take(size_t n) {
    DSIM_CHECK_MSG(pos_ + n <= data_.size(), "serialized data truncated");
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  template <typename T>
  T get_le() {
    auto s = take(sizeof(T));
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<u8>(s[i])) << (8 * i);
    }
    return v;
  }
  std::span<const std::byte> data_;
  size_t pos_ = 0;
};

/// Convenience: view a string as bytes.
inline std::span<const std::byte> as_bytes_view(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

}  // namespace dsim
