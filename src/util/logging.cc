#include "util/logging.h"

#include <cstdarg>

namespace dsim {
namespace {
LogLevel g_level = LogLevel::kWarn;
SimTime (*g_clock)() = nullptr;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }
void set_log_clock(SimTime (*now_fn)()) { g_clock = now_fn; }

namespace detail {

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(g_level);
}

void vlog(LogLevel level, const char* fmt, ...) {
  if (g_clock) {
    std::fprintf(stderr, "[%s %10s] ", level_name(level),
                 format_time(g_clock()).c_str());
  } else {
    std::fprintf(stderr, "[%s] ", level_name(level));
  }
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}

}  // namespace detail
}  // namespace dsim
