// Deterministic random number generation.
//
// Every stochastic element of the simulator (workload data, OS jitter,
// repetition noise for error bars) draws from an explicitly-seeded stream so
// that runs are bit-reproducible. We use xoshiro256** seeded via splitmix64,
// both public-domain algorithms by Blackman & Vigna.
#pragma once

#include <cstdint>

#include "util/types.h"

namespace dsim {

/// splitmix64 step; used for seeding and for cheap hash mixing.
constexpr u64 splitmix64(u64& state) {
  state += 0x9e3779b97f4a7c15ULL;
  u64 z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Pure splitmix64 finalizer over one value (stateless hash of a u64).
constexpr u64 mix64(u64 x) {
  u64 s = x;
  return splitmix64(s);
}

/// Mix several integers into a single 64-bit hash (for derived seeds).
constexpr u64 mix_seed(u64 a, u64 b = 0, u64 c = 0) {
  u64 s = a;
  u64 h = splitmix64(s);
  s ^= b + 0x632be59bd9b4e019ULL;
  h ^= splitmix64(s);
  s ^= c + 0x9e3779b97f4a7c15ULL;
  h ^= splitmix64(s);
  return h;
}

/// xoshiro256** PRNG. Cheap, high quality, trivially copyable.
class Rng {
 public:
  explicit Rng(u64 seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(u64 seed) {
    u64 sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  u64 next_u64() {
    const u64 result = rotl(s_[1] * 5, 7) * 9;
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  u64 next_below(u64 bound) { return next_u64() % bound; }

  /// Uniform in [lo, hi] inclusive.
  i64 next_range(i64 lo, i64 hi) {
    return lo + static_cast<i64>(next_below(static_cast<u64>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Approximately normal(0,1) via sum of uniforms (Irwin–Hall, 12 terms).
  /// Plenty for modeling OS jitter; avoids transcendental calls.
  double next_gaussian() {
    double acc = 0;
    for (int i = 0; i < 12; ++i) acc += next_double();
    return acc - 6.0;
  }

  /// Derive an independent child stream (for per-entity RNGs).
  Rng fork(u64 salt) { return Rng(mix_seed(next_u64(), salt)); }

 private:
  static constexpr u64 rotl(u64 x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  u64 s_[4]{};
};

}  // namespace dsim
