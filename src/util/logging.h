// Lightweight leveled logging.
//
// The simulator is single-threaded (all concurrency is virtual), so logging
// needs no synchronization. Log lines carry virtual time when a clock is
// registered, which makes traces line up with experiment output.
#pragma once

#include <cstdio>
#include <string>

#include "util/types.h"

namespace dsim {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global log configuration. Defaults to kWarn so tests/benches stay quiet.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Register a function returning current virtual time for log prefixes
/// (nullptr to clear).
void set_log_clock(SimTime (*now_fn)());

namespace detail {
bool log_enabled(LogLevel level);
void vlog(LogLevel level, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;
}  // namespace detail

}  // namespace dsim

#define DSIM_LOG(level, ...)                              \
  do {                                                    \
    if (::dsim::detail::log_enabled(level))               \
      ::dsim::detail::vlog(level, __VA_ARGS__);           \
  } while (0)

#define LOG_TRACE(...) DSIM_LOG(::dsim::LogLevel::kTrace, __VA_ARGS__)
#define LOG_DEBUG(...) DSIM_LOG(::dsim::LogLevel::kDebug, __VA_ARGS__)
#define LOG_INFO(...) DSIM_LOG(::dsim::LogLevel::kInfo, __VA_ARGS__)
#define LOG_WARN(...) DSIM_LOG(::dsim::LogLevel::kWarn, __VA_ARGS__)
#define LOG_ERROR(...) DSIM_LOG(::dsim::LogLevel::kError, __VA_ARGS__)
