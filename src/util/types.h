// Fundamental types shared across dmtcp-sim.
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>

namespace dsim {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Virtual simulation time in nanoseconds. All scheduling, device and
/// protocol costs are expressed in this clock; host wall time never leaks
/// into results, which keeps every run bit-reproducible.
using SimTime = i64;

namespace timeconst {
inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kSecond = 1'000'000'000;
}  // namespace timeconst

/// Convert seconds (double) to SimTime, rounding to nearest nanosecond.
constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * 1e9 + (s >= 0 ? 0.5 : -0.5));
}
/// Convert SimTime to seconds.
constexpr double to_seconds(SimTime t) { return static_cast<double>(t) * 1e-9; }

/// Identifier of a simulated cluster node (host).
using NodeId = i32;
/// Kernel-level ("real") process id on a node.
using Pid = i32;
/// Thread id within a process.
using Tid = i32;
/// File descriptor number.
using Fd = i32;

inline constexpr Pid kNoPid = -1;
inline constexpr Fd kNoFd = -1;

/// Format simulation time as a human-readable string (e.g. "2.034s").
std::string format_time(SimTime t);
/// Format a byte count as a human-readable string (e.g. "1.5 MB").
std::string format_bytes(u64 n);

}  // namespace dsim
