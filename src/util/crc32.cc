#include "util/crc32.h"

#include <array>

namespace dsim {
namespace {

constexpr std::array<u32, 256> make_table() {
  std::array<u32, 256> table{};
  for (u32 i = 0; i < 256; ++i) {
    u32 c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

u32 crc32_update(u32 crc, std::span<const std::byte> data) {
  u32 c = crc ^ 0xFFFFFFFFu;
  for (std::byte b : data) {
    c = kTable[(c ^ static_cast<u32>(b)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace dsim
