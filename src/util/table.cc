#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/assertx.h"

namespace dsim {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  DSIM_CHECK_MSG(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::to_ascii() const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += "| ";
      out += row[c];
      out.append(width[c] - row[c].size() + 1, ' ');
    }
    out += "|\n";
  };
  std::string out;
  emit_row(headers_, out);
  for (size_t c = 0; c < headers_.size(); ++c) {
    out += "|";
    out.append(width[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string Table::to_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += row[c];
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

void Table::print(const std::string& title) const {
  std::printf("\n=== %s ===\n%s", title.c_str(), to_ascii().c_str());
  std::fflush(stdout);
}

}  // namespace dsim
