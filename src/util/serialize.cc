#include "util/serialize.h"

// Header-only implementation; this translation unit anchors the library.
namespace dsim {}
