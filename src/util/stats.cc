#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/assertx.h"

namespace dsim {

void Stats::add(double x) { samples_.push_back(x); }

double Stats::mean() const {
  if (samples_.empty()) return 0.0;
  double acc = 0;
  for (double x : samples_) acc += x;
  return acc / static_cast<double>(samples_.size());
}

double Stats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Stats::min() const {
  DSIM_CHECK(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Stats::max() const {
  DSIM_CHECK(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

}  // namespace dsim
