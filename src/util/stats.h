// Small statistics helpers for benchmark repetitions (mean, stddev, min/max).
#pragma once

#include <vector>

#include "util/types.h"

namespace dsim {

/// Accumulates samples and reports summary statistics. Used by the benchmark
/// harness to report "mean ± one standard deviation" exactly as the paper's
/// figures do (Fig. 4 caption).
class Stats {
 public:
  void add(double x);
  size_t count() const { return samples_.size(); }
  double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double stddev() const;
  double min() const;
  double max() const;
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace dsim
