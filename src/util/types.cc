#include "util/types.h"

#include <cstdio>

namespace dsim {

std::string format_time(SimTime t) {
  char buf[64];
  const double s = to_seconds(t);
  if (t < timeconst::kMicrosecond) {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(t));
  } else if (t < timeconst::kMillisecond) {
    std::snprintf(buf, sizeof buf, "%.2fus", s * 1e6);
  } else if (t < timeconst::kSecond) {
    std::snprintf(buf, sizeof buf, "%.2fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.3fs", s);
  }
  return buf;
}

std::string format_bytes(u64 n) {
  char buf[64];
  if (n < 1024) {
    std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(n));
  } else if (n < 1024ull * 1024) {
    std::snprintf(buf, sizeof buf, "%.1f KB", static_cast<double>(n) / 1024.0);
  } else if (n < 1024ull * 1024 * 1024) {
    std::snprintf(buf, sizeof buf, "%.1f MB",
                  static_cast<double>(n) / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof buf, "%.2f GB",
                  static_cast<double>(n) / (1024.0 * 1024.0 * 1024.0));
  }
  return buf;
}

}  // namespace dsim
