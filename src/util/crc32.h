// CRC-32 (IEEE 802.3 polynomial, reflected), as used by gzip containers.
#pragma once

#include <cstddef>
#include <span>

#include "util/types.h"

namespace dsim {

/// Incremental CRC-32. `crc` should start at 0 for a fresh stream.
u32 crc32_update(u32 crc, std::span<const std::byte> data);

inline u32 crc32(std::span<const std::byte> data) {
  return crc32_update(0, data);
}

}  // namespace dsim
