// Always-on invariant checking for the simulator.
//
// The simulator is a correctness instrument: a silently-violated invariant
// would invalidate every experiment built on top of it, so checks stay on in
// release builds (cost is negligible next to the protocol work).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dsim::detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "FATAL: check `%s` failed at %s:%d%s%s\n", expr, file,
               line, msg && *msg ? ": " : "", msg ? msg : "");
  std::abort();
}
}  // namespace dsim::detail

#define DSIM_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr))                                                      \
      ::dsim::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define DSIM_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr))                                                      \
      ::dsim::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#define DSIM_UNREACHABLE(msg) \
  ::dsim::detail::check_failed("unreachable", __FILE__, __LINE__, (msg))
