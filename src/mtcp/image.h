// MTCP process image format.
//
// DMTCP's two-layer design (§4.1): MTCP owns single-process state — memory
// segments, thread contexts, signal dispositions, terminal ownership — while
// the DMTCP layer above owns descriptors and connections. The DMTCP layer's
// serialized connection table travels as an opaque blob inside the image
// (`dmtcp_blob`), keeping the layer API as narrow as the paper describes.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/byte_image.h"
#include "sim/process.h"
#include "sim/thread.h"
#include "util/serialize.h"
#include "util/types.h"

namespace dsim::mtcp {

struct SegmentImage {
  std::string name;
  sim::MemKind kind = sim::MemKind::kHeap;
  bool shared = false;
  std::string backing_path;
  sim::ByteImage data;
};

struct ThreadImage {
  sim::ThreadKind kind = sim::ThreadKind::kMain;
  sim::ThreadContext ctx;
};

struct ProcessImage {
  // Identity.
  std::string prog_name;
  std::vector<std::string> argv;
  std::map<std::string, std::string> env;
  Pid virt_pid = kNoPid;
  Pid virt_ppid = kNoPid;
  NodeId origin_node = -1;

  // MTCP-owned state.
  sim::SignalTable signals;
  i32 ctty = -1;
  std::vector<SegmentImage> segments;
  std::vector<ThreadImage> threads;  // user threads only; manager excluded

  // DMTCP layer payload (connection table, fd table, drained socket data).
  std::vector<std::byte> dmtcp_blob;

  /// Sum of segment (virtual) sizes — the paper's "memory image" size.
  u64 memory_bytes() const;

  /// Full image: metadata, segments with data, and a trailing CRC-32 of
  /// the whole serialized stream. deserialize() verifies the checksum and
  /// fails loudly on mismatch — images have end-to-end integrity.
  void serialize(ByteWriter& w) const;
  static ProcessImage deserialize(ByteReader& r);

  /// Everything except segment contents (identity, signals, threads, the
  /// DMTCP blob). Incremental checkpoints store this blob in the manifest
  /// and reassemble segment data from the chunk repository.
  void serialize_meta(ByteWriter& w) const;
  static ProcessImage deserialize_meta(ByteReader& r);
};

}  // namespace dsim::mtcp
