#include "mtcp/image.h"

#include "util/assertx.h"
#include "util/crc32.h"

namespace dsim::mtcp {

u64 ProcessImage::memory_bytes() const {
  u64 acc = 0;
  for (const auto& s : segments) acc += s.data.size();
  return acc;
}

void ProcessImage::serialize_meta(ByteWriter& w) const {
  w.put_string(prog_name);
  w.put_u64(argv.size());
  for (const auto& a : argv) w.put_string(a);
  w.put_u64(env.size());
  for (const auto& [k, v] : env) {
    w.put_string(k);
    w.put_string(v);
  }
  w.put_i32(virt_pid);
  w.put_i32(virt_ppid);
  w.put_i32(origin_node);

  for (u8 h : signals.handler) w.put_u8(h);
  w.put_u32(signals.blocked_mask);
  w.put_i32(ctty);

  w.put_u64(threads.size());
  for (const auto& t : threads) {
    w.put_u8(static_cast<u8>(t.kind));
    w.put_u32(t.ctx.phase);
    w.put_u32(t.ctx.role);
    for (u64 r : t.ctx.regs) w.put_u64(r);
  }

  w.put_blob(dmtcp_blob);
}

ProcessImage ProcessImage::deserialize_meta(ByteReader& r) {
  ProcessImage img;
  img.prog_name = r.get_string();
  const u64 nargv = r.get_u64();
  for (u64 i = 0; i < nargv; ++i) img.argv.push_back(r.get_string());
  const u64 nenv = r.get_u64();
  for (u64 i = 0; i < nenv; ++i) {
    auto k = r.get_string();
    img.env[k] = r.get_string();
  }
  img.virt_pid = r.get_i32();
  img.virt_ppid = r.get_i32();
  img.origin_node = r.get_i32();

  for (auto& h : img.signals.handler) h = r.get_u8();
  img.signals.blocked_mask = r.get_u32();
  img.ctty = r.get_i32();

  const u64 nthr = r.get_u64();
  for (u64 i = 0; i < nthr; ++i) {
    ThreadImage t;
    t.kind = static_cast<sim::ThreadKind>(r.get_u8());
    t.ctx.phase = r.get_u32();
    t.ctx.role = r.get_u32();
    for (auto& reg : t.ctx.regs) reg = r.get_u64();
    img.threads.push_back(t);
  }

  img.dmtcp_blob = r.get_blob();
  return img;
}

void ProcessImage::serialize(ByteWriter& w) const {
  const size_t start = w.size();
  serialize_meta(w);

  w.put_u64(segments.size());
  for (const auto& s : segments) {
    w.put_string(s.name);
    w.put_u8(static_cast<u8>(s.kind));
    w.put_bool(s.shared);
    w.put_string(s.backing_path);
    s.data.serialize(w);
  }

  w.put_u32(crc32(w.bytes().subspan(start)));
}

ProcessImage ProcessImage::deserialize(ByteReader& r) {
  const size_t start = r.pos();
  ProcessImage img = deserialize_meta(r);

  const u64 nseg = r.get_u64();
  for (u64 i = 0; i < nseg; ++i) {
    SegmentImage s;
    s.name = r.get_string();
    s.kind = static_cast<sim::MemKind>(r.get_u8());
    s.shared = r.get_bool();
    s.backing_path = r.get_string();
    s.data = sim::ByteImage::deserialize(r);
    img.segments.push_back(std::move(s));
  }

  const u32 computed = crc32(r.window(start, r.pos() - start));
  const u32 stored = r.get_u32();
  DSIM_CHECK_MSG(computed == stored,
                 "checkpoint image checksum mismatch: the image is corrupt "
                 "or was truncated in transit");
  return img;
}

}  // namespace dsim::mtcp
