// MTCP: single-process checkpoint capture, encoding and restore.
//
// Capture walks the live process; encode serializes + compresses (real
// bytes really compressed, pattern ballast estimated from measured samples);
// restore rebuilds memory/signals into a bare process. Virtual-time costs
// of assembling, compressing and decompressing are *computed* here and
// *charged* by the caller (the DMTCP manager thread), so the forked-
// checkpointing engine can charge them on a background CPU job instead.
#pragma once

#include <functional>

#include "compress/compressor.h"
#include "mtcp/image.h"
#include "sim/process.h"

namespace dsim::mtcp {

/// Size/cost accounting for one encoded image.
struct EncodedImage {
  std::vector<std::byte> bytes;   // real container written to the VFS
  u64 virtual_uncompressed = 0;   // what the paper's "checkpoint size" means
  u64 virtual_compressed = 0;     // == virtual_uncompressed for CodecKind::kNone
  double assemble_seconds = 0;    // serialize/memcpy cost
  double compress_seconds = 0;    // gzip CPU cost (0 when not compressing)
};

/// Capture the MTCP-owned state of a live process. `dmtcp_blob` is spliced
/// in by the caller (the DMTCP layer owns descriptors).
ProcessImage capture(sim::Process& p);

/// Serialize + compress. Pattern extents are charged by measured sample
/// ratios (DESIGN.md §5); real extents are actually compressed.
EncodedImage encode(const ProcessImage& img, compress::CodecKind codec);

/// Inverse of encode. Also returns the decode CPU cost in seconds via
/// `decode_seconds` (gunzip is output-rate-bound; §5.4).
ProcessImage decode(std::span<const std::byte> container,
                    compress::CodecKind codec, double* decode_seconds);

/// Rebuild memory/signals/identity into `p` (threads are started by the
/// restart driver; shared-memory §4.5 rules are applied by core::restart).
void restore_memory(sim::Process& p, const ProcessImage& img);

}  // namespace dsim::mtcp
