// MTCP: single-process checkpoint capture, encoding and restore.
//
// Capture walks the live process; encode serializes + compresses (real
// bytes really compressed, pattern ballast estimated from measured samples);
// restore rebuilds memory/signals into a bare process. Virtual-time costs
// of assembling, compressing and decompressing are *computed* here and
// *charged* by the caller (the DMTCP manager thread), so the forked-
// checkpointing engine can charge them on a background CPU job instead.
#pragma once

#include <functional>
#include <string>

#include "ckptstore/manifest.h"
#include "ckptstore/repository.h"
#include "compress/compressor.h"
#include "mtcp/image.h"
#include "sim/process.h"

namespace dsim::mtcp {

/// Size/cost accounting for one encoded image.
struct EncodedImage {
  std::vector<std::byte> bytes;   // real container written to the VFS
  u64 virtual_uncompressed = 0;   // what the paper's "checkpoint size" means
  u64 virtual_compressed = 0;     // == virtual_uncompressed for CodecKind::kNone
  double assemble_seconds = 0;    // serialize/memcpy cost
  double compress_seconds = 0;    // gzip CPU cost (0 when not compressing)
};

/// Capture the MTCP-owned state of a live process. `dmtcp_blob` is spliced
/// in by the caller (the DMTCP layer owns descriptors).
ProcessImage capture(sim::Process& p);

/// Serialize + compress. Pattern extents are charged by measured sample
/// ratios (DESIGN.md §5); real extents are actually compressed.
EncodedImage encode(const ProcessImage& img, compress::CodecKind codec);

/// Inverse of encode. Also returns the decode CPU cost in seconds via
/// `decode_seconds` (gunzip is output-rate-bound; §5.4).
ProcessImage decode(std::span<const std::byte> container,
                    compress::CodecKind codec, double* decode_seconds);

/// Rebuild memory/signals/identity into `p` (threads are started by the
/// restart driver; shared-memory §4.5 rules are applied by core::restart).
void restore_memory(sim::Process& p, const ProcessImage& img);

// --- incremental (content-addressed) encode path ----------------------------

/// Accounting for one incremental checkpoint generation.
struct EncodedDelta {
  std::vector<std::byte> manifest_bytes;  // the file written to the VFS
  u64 virtual_uncompressed = 0;  // full image size (same meaning as encode())
  u64 new_chunk_bytes = 0;       // chunk bytes newly stored this generation
  /// Bytes actually submitted to the storage device: new chunks + manifest.
  u64 submitted_bytes = 0;
  /// Logical image bytes answered by chunks already resident in the
  /// repository — stored by an earlier generation of this process *or by
  /// another process* (shared libraries in a cluster-wide store).
  u64 dup_chunk_bytes = 0;
  u64 total_chunks = 0;
  u64 new_chunks = 0;
  /// Logical (pre-codec) bytes of the *new* chunks, split by content class:
  /// zero-dominated input compresses at a very different rate than typical
  /// program data, and the async pipeline re-prices the compress stage from
  /// these under its own --compress-bw knob.
  u64 new_logical_zero_bytes = 0;
  u64 new_logical_data_bytes = 0;
  u64 new_logical_bytes() const {
    return new_logical_zero_bytes + new_logical_data_bytes;
  }
  double assemble_seconds = 0;  // scan + hash cost over the full image
  double compress_seconds = 0;  // codec cost over *new* chunk bytes only
  /// The chunks stored this generation (key, device-charged bytes), in
  /// store order. The chunk-store service places each one on its replica
  /// nodes and charges their devices; sums to new_chunk_bytes.
  std::vector<std::pair<ckptstore::ChunkKey, u64>> stored_chunks;
  /// Chunks answered by already-resident content (key, resident
  /// device-charged bytes). The service checks these against placement:
  /// a dedup hit whose every replica died with its node must be
  /// re-stored, or this generation's manifest would pin permanently
  /// unrestorable data.
  std::vector<std::pair<ckptstore::ChunkKey, u64>> dup_chunks;
};

/// Split the image's segments into chunks per `chunking` (fixed-size spans
/// or content-defined cutpoints), store the ones not already resident in
/// `repo`, and emit the generation manifest. Chunk containers are
/// compressed once with `codec` and reused by every later generation — of
/// any process sharing the repository — that references the same content.
EncodedDelta encode_incremental(const ProcessImage& img,
                                compress::CodecKind codec,
                                const ckptstore::ChunkingParams& chunking,
                                const std::string& owner, int generation,
                                ckptstore::Repository& repo);

/// Materialize a full ProcessImage from a manifest and the chunk
/// repository, verifying each chunk's CRC-32. On a missing or corrupted
/// chunk, `error` receives a description (naming the segment, offset and
/// chunk key) and an empty image is returned. `read_bytes` receives the
/// device bytes a restart must fetch for every referenced chunk (the
/// manifest file itself is charged by the caller); `decode_seconds` the
/// decompression CPU cost, as with decode().
ProcessImage decode_incremental(const ckptstore::Manifest& mf,
                                const ckptstore::Repository& repo,
                                double* decode_seconds, u64* read_bytes,
                                std::string* error);

}  // namespace dsim::mtcp
