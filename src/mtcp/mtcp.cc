#include "mtcp/mtcp.h"

#include <algorithm>

#include "sim/model_params.h"
#include "util/assertx.h"

namespace dsim::mtcp {
namespace {

using sim::ByteImage;
using sim::ExtentKind;

/// Measured compression ratio of a pattern extent, from a materialized
/// sample (cached per (codec, kind, seed-class)).
double pattern_ratio(compress::CodecKind codec, const ByteImage::Extent& ext,
                     u64 off) {
  constexpr u64 kSample = 64 * 1024;
  // Zero extents: one measurement per codec suffices.
  static std::map<compress::CodecKind, double> zero_cache;
  if (ext.kind == ExtentKind::kZero) {
    auto zit = zero_cache.find(codec);
    if (zit == zero_cache.end()) {
      std::vector<std::byte> zeros(kSample);
      zit = zero_cache.emplace(codec,
                               compress::measure_ratio(codec, zeros)).first;
    }
    return zit->second;
  }
  // Random extents: position-based content; sample the actual range head.
  static std::map<std::pair<compress::CodecKind, u64>, double> rand_cache;
  auto it = rand_cache.find({codec, ext.seed});
  if (it != rand_cache.end()) return it->second;
  std::vector<std::byte> sample(std::min<u64>(kSample, ext.len));
  for (u64 i = 0; i < sample.size(); ++i) {
    sample[i] = static_cast<std::byte>(ByteImage::rand_byte(ext.seed, off + i));
  }
  const double r = compress::measure_ratio(codec, sample);
  rand_cache.emplace(std::make_pair(codec, ext.seed), r);
  return r;
}

}  // namespace

ProcessImage capture(sim::Process& p) {
  ProcessImage img;
  img.prog_name = p.prog_name();
  img.argv = p.argv();
  img.env = p.env();
  img.virt_pid = p.pid();   // overwritten by the DMTCP layer with the vpid
  img.virt_ppid = p.ppid();
  img.origin_node = p.node();
  img.signals = p.signals();
  img.ctty = p.ctty();
  for (const auto& seg : p.mem().segments()) {
    SegmentImage si;
    si.name = seg->name;
    si.kind = seg->kind;
    si.shared = seg->shared;
    si.backing_path = seg->backing_path;
    si.data = seg->data;  // COW: O(#extents)
    img.segments.push_back(std::move(si));
  }
  for (const auto& t : p.threads()) {
    if (t->kind() == sim::ThreadKind::kManager) continue;
    if (!t->alive()) continue;
    img.threads.push_back(ThreadImage{t->kind(), t->context()});
  }
  // Main thread first (restore recreates in order).
  std::stable_sort(img.threads.begin(), img.threads.end(),
                   [](const ThreadImage& a, const ThreadImage& b) {
                     return static_cast<int>(a.kind) < static_cast<int>(b.kind);
                   });
  return img;
}

EncodedImage encode(const ProcessImage& img, compress::CodecKind codec) {
  ByteWriter w;
  img.serialize(w);
  auto serialized = w.take();

  EncodedImage out;
  // Virtual uncompressed size: full memory plus (small) metadata. Pattern
  // extents are descriptors in `serialized` but count at full size here.
  u64 pattern_bytes = 0;
  u64 zero_bytes = 0;
  double pattern_compressed = 0;
  for (const auto& seg : img.segments) {
    seg.data.for_each_extent([&](u64 off, const ByteImage::Extent& ext) {
      if (ext.kind == ExtentKind::kZero) zero_bytes += ext.len;
      if (ext.kind == ExtentKind::kReal) return;
      pattern_bytes += ext.len;
      if (codec != compress::CodecKind::kNone) {
        pattern_compressed +=
            static_cast<double>(ext.len) * pattern_ratio(codec, ext, off);
      }
    });
  }
  out.virtual_uncompressed = serialized.size() + pattern_bytes;

  out.bytes = compress::codec(codec).compress(serialized);
  if (codec == compress::CodecKind::kNone) {
    out.virtual_compressed = out.virtual_uncompressed;
    out.compress_seconds = 0;
    // Direct write path (no gzip pipe): assembly is a fast gather.
    out.assemble_seconds = static_cast<double>(out.virtual_uncompressed) /
                           sim::params::kMemcpyBw;
  } else {
    out.virtual_compressed =
        out.bytes.size() + static_cast<u64>(pattern_compressed);
    // gzip cost split by content class (DESIGN.md §6): zero pages fly,
    // everything else crawls at data rate.
    const u64 nonzero = out.virtual_uncompressed - zero_bytes;
    out.compress_seconds =
        static_cast<double>(zero_bytes) / sim::params::kGzipZeroBw +
        static_cast<double>(nonzero) / sim::params::kGzipDataBw;
    out.assemble_seconds = static_cast<double>(out.virtual_uncompressed) /
                           sim::params::kMemcpyBw;
  }
  return out;
}

ProcessImage decode(std::span<const std::byte> container,
                    compress::CodecKind codec, double* decode_seconds) {
  auto serialized = compress::codec(codec).decompress(container);
  ByteReader r(serialized);
  ProcessImage img = ProcessImage::deserialize(r);
  if (decode_seconds) {
    const double virt = static_cast<double>(img.memory_bytes());
    *decode_seconds =
        codec == compress::CodecKind::kNone
            ? virt / sim::params::kImageAssembleBw
            : virt / sim::params::kGunzipOutBw;
  }
  return img;
}

void restore_memory(sim::Process& p, const ProcessImage& img) {
  p.mem().clear();
  for (const auto& si : img.segments) {
    if (si.shared) continue;  // §4.5 rules applied by core::restart
    auto seg = std::make_shared<sim::MemSegment>();
    seg->name = si.name;
    seg->kind = si.kind;
    seg->shared = false;
    seg->data = si.data;
    p.mem().attach(std::move(seg));
  }
  p.signals() = img.signals;
  p.ctty() = img.ctty;
}

}  // namespace dsim::mtcp
