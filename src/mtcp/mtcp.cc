#include "mtcp/mtcp.h"

#include <algorithm>

#include "sim/model_params.h"
#include "util/assertx.h"
#include "util/crc32.h"

namespace dsim::mtcp {
namespace {

using sim::ByteImage;
using sim::ExtentKind;

/// Measured compression ratio of a pattern extent, from a materialized
/// sample (cached per (codec, kind, seed-class)).
double pattern_ratio(compress::CodecKind codec, const ByteImage::Extent& ext,
                     u64 off) {
  constexpr u64 kSample = 64 * 1024;
  // Zero extents: one measurement per codec suffices.
  static std::map<compress::CodecKind, double> zero_cache;
  if (ext.kind == ExtentKind::kZero) {
    auto zit = zero_cache.find(codec);
    if (zit == zero_cache.end()) {
      std::vector<std::byte> zeros(kSample);
      zit = zero_cache.emplace(codec,
                               compress::measure_ratio(codec, zeros)).first;
    }
    return zit->second;
  }
  // Random extents: position-based content; sample the actual range head.
  static std::map<std::pair<compress::CodecKind, u64>, double> rand_cache;
  auto it = rand_cache.find({codec, ext.seed});
  if (it != rand_cache.end()) return it->second;
  std::vector<std::byte> sample(std::min<u64>(kSample, ext.len));
  for (u64 i = 0; i < sample.size(); ++i) {
    sample[i] = static_cast<std::byte>(ByteImage::rand_byte(ext.seed, off + i));
  }
  const double r = compress::measure_ratio(codec, sample);
  rand_cache.emplace(std::make_pair(codec, ext.seed), r);
  return r;
}

}  // namespace

ProcessImage capture(sim::Process& p) {
  ProcessImage img;
  img.prog_name = p.prog_name();
  img.argv = p.argv();
  img.env = p.env();
  img.virt_pid = p.pid();   // overwritten by the DMTCP layer with the vpid
  img.virt_ppid = p.ppid();
  img.origin_node = p.node();
  img.signals = p.signals();
  img.ctty = p.ctty();
  for (const auto& seg : p.mem().segments()) {
    SegmentImage si;
    si.name = seg->name;
    si.kind = seg->kind;
    si.shared = seg->shared;
    si.backing_path = seg->backing_path;
    si.data = seg->data;  // COW: O(#extents)
    img.segments.push_back(std::move(si));
  }
  for (const auto& t : p.threads()) {
    if (t->kind() == sim::ThreadKind::kManager) continue;
    if (!t->alive()) continue;
    img.threads.push_back(ThreadImage{t->kind(), t->context()});
  }
  // Main thread first (restore recreates in order).
  std::stable_sort(img.threads.begin(), img.threads.end(),
                   [](const ThreadImage& a, const ThreadImage& b) {
                     return static_cast<int>(a.kind) < static_cast<int>(b.kind);
                   });
  return img;
}

EncodedImage encode(const ProcessImage& img, compress::CodecKind codec) {
  ByteWriter w;
  img.serialize(w);
  auto serialized = w.take();

  EncodedImage out;
  // Virtual uncompressed size: full memory plus (small) metadata. Pattern
  // extents are descriptors in `serialized` but count at full size here.
  u64 pattern_bytes = 0;
  u64 zero_bytes = 0;
  double pattern_compressed = 0;
  for (const auto& seg : img.segments) {
    seg.data.for_each_extent([&](u64 off, const ByteImage::Extent& ext) {
      if (ext.kind == ExtentKind::kZero) zero_bytes += ext.len;
      if (ext.kind == ExtentKind::kReal) return;
      pattern_bytes += ext.len;
      if (codec != compress::CodecKind::kNone) {
        pattern_compressed +=
            static_cast<double>(ext.len) * pattern_ratio(codec, ext, off);
      }
    });
  }
  out.virtual_uncompressed = serialized.size() + pattern_bytes;

  out.bytes = compress::codec(codec).compress(serialized);
  if (codec == compress::CodecKind::kNone) {
    out.virtual_compressed = out.virtual_uncompressed;
    out.compress_seconds = 0;
    // Direct write path (no gzip pipe): assembly is a fast gather.
    out.assemble_seconds = static_cast<double>(out.virtual_uncompressed) /
                           sim::params::kMemcpyBw;
  } else {
    out.virtual_compressed =
        out.bytes.size() + static_cast<u64>(pattern_compressed);
    // gzip cost split by content class (DESIGN.md §6): zero pages fly,
    // everything else crawls at data rate.
    const u64 nonzero = out.virtual_uncompressed - zero_bytes;
    out.compress_seconds =
        compress::codec_cost_factor(codec) *
        (static_cast<double>(zero_bytes) / sim::params::kGzipZeroBw +
         static_cast<double>(nonzero) / sim::params::kGzipDataBw);
    out.assemble_seconds = static_cast<double>(out.virtual_uncompressed) /
                           sim::params::kMemcpyBw;
  }
  return out;
}

ProcessImage decode(std::span<const std::byte> container,
                    compress::CodecKind codec, double* decode_seconds) {
  auto serialized = compress::codec(codec).decompress(container);
  ByteReader r(serialized);
  ProcessImage img = ProcessImage::deserialize(r);
  if (decode_seconds) {
    const double virt = static_cast<double>(img.memory_bytes());
    *decode_seconds =
        codec == compress::CodecKind::kNone
            ? virt / sim::params::kImageAssembleBw
            : virt / sim::params::kGunzipOutBw;
  }
  return img;
}

EncodedDelta encode_incremental(const ProcessImage& img,
                                compress::CodecKind codec,
                                const ckptstore::ChunkingParams& chunking,
                                const std::string& owner, int generation,
                                ckptstore::Repository& repo) {
  EncodedDelta out;
  ckptstore::Manifest mf;
  mf.owner = owner;
  mf.generation = generation;
  mf.chunking = chunking;
  mf.codec = static_cast<u8>(codec);
  {
    ByteWriter mw;
    img.serialize_meta(mw);
    mf.meta_blob = mw.take();
  }

  // Codec CPU is charged for new chunk bytes only; the scan/hash pass still
  // walks the full image (that is the price of finding the delta). CDC
  // additionally pays a gear rolling-hash pass over every real byte to
  // find the cutpoints — the observable CPU cost of preferring CDC.
  u64 new_zero_bytes = 0;
  u64 new_other_bytes = 0;
  u64 real_scanned_bytes = 0;
  for (const auto& seg : img.segments) {
    ckptstore::SegmentManifest sm;
    sm.name = seg.name;
    sm.kind = static_cast<u8>(seg.kind);
    sm.shared = seg.shared;
    sm.backing_path = seg.backing_path;
    sm.size = seg.data.size();
    for (const auto& span : ckptstore::scan_chunks_with(seg.data, chunking)) {
      // Real/mixed spans materialize once here; key, CRC and codec all
      // reuse the same buffer. (The CDC scanner walks real bytes again in
      // its own bounded windows to place cutpoints — charged below as the
      // gear pass.) Pattern spans never materialize for keying.
      std::vector<std::byte> content;
      ckptstore::ChunkKey key;
      if (span.kind == ExtentKind::kReal) {
        content = seg.data.materialize(span.off, span.len);
        key = ckptstore::content_key(content);
        real_scanned_bytes += span.len;
      } else {
        key = ckptstore::span_key(seg.data, span);
      }
      ckptstore::ChunkRef ref;
      ref.key = key;
      ref.len = span.len;
      out.total_chunks++;
      if (const ckptstore::Chunk* resident = repo.find(key)) {
        ref.crc = resident->crc;
        out.dup_chunk_bytes += span.len;
        out.dup_chunks.emplace_back(key, resident->charged_bytes);
        repo.note_hit();
      } else {
        ckptstore::Chunk c;
        c.kind = span.kind;
        c.len = span.len;
        c.seed = span.seed;
        c.pos = span.off;
        if (span.kind == ExtentKind::kReal) {
          c.crc = crc32(content);
          auto container = compress::codec(codec).compress(content);
          c.charged_bytes = container.size();
          c.stored = std::make_shared<const std::vector<std::byte>>(
              std::move(container));
          new_other_bytes += span.len;
        } else {
          c.crc = ckptstore::span_crc(seg.data, span);
          // Pattern chunk: stored as a descriptor; the device is charged at
          // the measured codec ratio, as the full-image encoder charges
          // ballast extents.
          ByteImage::Extent ext;
          ext.len = span.len;
          ext.kind = span.kind;
          ext.seed = span.seed;
          const double ratio = codec == compress::CodecKind::kNone
                                   ? 1.0
                                   : pattern_ratio(codec, ext, span.off);
          c.charged_bytes = std::max<u64>(
              1, static_cast<u64>(static_cast<double>(span.len) * ratio));
          if (span.kind == ExtentKind::kZero) new_zero_bytes += span.len;
          else new_other_bytes += span.len;
        }
        ref.crc = c.crc;
        out.new_chunk_bytes += c.charged_bytes;
        out.new_chunks++;
        out.stored_chunks.emplace_back(key, c.charged_bytes);
        repo.put(key, std::move(c));
      }
      sm.chunks.push_back(ref);
    }
    mf.segments.push_back(std::move(sm));
  }

  out.virtual_uncompressed = mf.meta_blob.size() + mf.full_bytes();
  out.manifest_bytes = mf.encode();
  out.submitted_bytes = out.new_chunk_bytes + out.manifest_bytes.size();
  out.assemble_seconds = static_cast<double>(out.virtual_uncompressed) /
                         sim::params::kMemcpyBw;
  if (chunking.mode != ckptstore::ChunkingMode::kFixed) {
    // Both CDC variants pay the gear pass over real bytes; FastCDC's
    // second mask costs one extra compare per byte, lost in the noise.
    out.assemble_seconds += static_cast<double>(real_scanned_bytes) /
                            sim::params::kGearHashBw;
  }
  out.new_logical_zero_bytes = new_zero_bytes;
  out.new_logical_data_bytes = new_other_bytes;
  if (codec != compress::CodecKind::kNone) {
    out.compress_seconds =
        compress::codec_cost_factor(codec) *
        (static_cast<double>(new_zero_bytes) / sim::params::kGzipZeroBw +
         static_cast<double>(new_other_bytes) / sim::params::kGzipDataBw);
  }
  repo.commit_generation(owner, generation, mf.all_keys(), mf.full_bytes());
  return out;
}

ProcessImage decode_incremental(const ckptstore::Manifest& mf,
                                const ckptstore::Repository& repo,
                                double* decode_seconds, u64* read_bytes,
                                std::string* error) {
  if (error) error->clear();
  ProcessImage img;
  {
    ByteReader r(mf.meta_blob);
    img = ProcessImage::deserialize_meta(r);
  }
  const auto codec = static_cast<compress::CodecKind>(mf.codec);
  u64 reads = 0;  // chunk fetches; the caller adds the manifest file itself

  auto fail = [&](std::string msg) {
    if (error) *error = std::move(msg);
    return ProcessImage{};
  };

  for (const auto& sm : mf.segments) {
    SegmentImage si;
    si.name = sm.name;
    si.kind = static_cast<sim::MemKind>(sm.kind);
    si.shared = sm.shared;
    si.backing_path = sm.backing_path;
    si.data = ByteImage(sm.size);
    u64 off = 0;
    for (const auto& ref : sm.chunks) {
      const ckptstore::Chunk* c = repo.find(ref.key);
      if (!c) {
        return fail("restart: chunk " + ref.key.str() + " of segment '" +
                    sm.name + "' @" + std::to_string(off) +
                    " is missing from the repository (collected by an "
                    "over-aggressive retention policy?)");
      }
      reads += c->charged_bytes;
      if (c->kind == ExtentKind::kReal) {
        auto content = c->materialize(codec);
        if (content.size() != ref.len || crc32(content) != ref.crc) {
          return fail("restart: corrupted chunk " + ref.key.str() +
                      " in segment '" + sm.name + "' @" +
                      std::to_string(off) + ": content CRC mismatch");
        }
        si.data.write(off, content);
      } else {
        // Rand keys bake the origin offset in (rand_key), so a matching
        // chunk always refills at the position its content was generated
        // at; a pos mismatch means the descriptor itself rotted.
        if (c->crc != ref.crc || c->len != ref.len ||
            (c->kind == ExtentKind::kRand && c->pos != off)) {
          return fail("restart: corrupted pattern chunk " + ref.key.str() +
                      " in segment '" + sm.name + "' @" +
                      std::to_string(off) + ": descriptor mismatch");
        }
        si.data.fill(off, ref.len, c->kind, c->seed);
      }
      off += ref.len;
    }
    img.segments.push_back(std::move(si));
  }

  if (read_bytes) *read_bytes = reads;
  if (decode_seconds) {
    const double virt = static_cast<double>(img.memory_bytes());
    *decode_seconds =
        codec == compress::CodecKind::kNone
            ? virt / sim::params::kImageAssembleBw
            : virt / sim::params::kGunzipOutBw;
  }
  return img;
}

void restore_memory(sim::Process& p, const ProcessImage& img) {
  p.mem().clear();
  for (const auto& si : img.segments) {
    if (si.shared) continue;  // §4.5 rules applied by core::restart
    auto seg = std::make_shared<sim::MemSegment>();
    seg->name = si.name;
    seg->kind = si.kind;
    seg->shared = false;
    seg->data = si.data;
    p.mem().attach(std::move(seg));
  }
  p.signals() = img.signals;
  p.ctty() = img.ctty;
}

}  // namespace dsim::mtcp
