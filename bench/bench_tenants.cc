// Multi-tenant serving: two computations sharing one chunk-store service,
// with weighted fair queueing isolating the victim from a noisy neighbor.
//
// Three arms over the same world shape — `ranks` noisy nodes (tenant 1),
// one victim node (tenant 2, weight 4), dedicated store node, one shard so
// every request crosses the same queue:
//   - solo: the victim checkpoints alone (its own self-backlog + RPC floor
//     is the baseline p99);
//   - fq: the noisy tenant checkpoints concurrently (a dedup-probe storm
//     that backs up the shard queue) with DRR fair queueing on — the
//     victim's probe round rides its own weighted grant and its p99 stays
//     within 2x of solo;
//   - nofq: the ablation. Same storm through the legacy FIFO — the
//     victim's probes queue behind the storm's backlog and p99 degrades
//     >= 4x.
// The fq arm also reports cross-tenant dedup (both tenants map the same
// shared-library ballast; the repository stores those chunks once and
// attributes them to the {t1,t2} group) and a victim-only kill + restart
// beside the live neighbor (zero lost chunks). A separate two-rank world
// gives the noisy tenant a small in-flight byte budget and shows admission
// control holding over-budget stores at the tenant edge.
//
// Emits BENCH_tenants.json (checked by the CI bench-smoke job).
//
// Knobs: DSIM_TEN_RANKS (8), DSIM_TEN_LIB_MB (2), DSIM_TEN_PRIV_MB (32),
// DSIM_TEN_VIC_KB (768).
#include <algorithm>
#include <fstream>
#include <vector>

#include "bench/bench_util.h"
#include "ckptstore/repository.h"
#include "ckptstore/service.h"
#include "obs/metrics.h"

using namespace dsim;
using namespace dsim::bench;

namespace {

/// The service endpoint gets its own node (co-locating it with a rank
/// couples the victim's waits to that rank's NIC bursts).
constexpr int kStoreNodes = 1;

core::DmtcpOptions tenant_opts(int tenant, u16 coord_port, int store_node,
                               bool fair_queueing) {
  core::DmtcpOptions o;
  o.incremental = true;
  o.codec = compress::CodecKind::kNone;  // exact byte accounting
  o.chunking = ckptstore::ChunkingMode::kCdc;
  o.cdc_min_bytes = 4 * 1024;
  o.cdc_avg_bytes = 16 * 1024;
  o.cdc_max_bytes = 64 * 1024;
  o.dedup_scope = core::DedupScope::kCluster;
  o.store_node = store_node;
  o.store_shards = 1;  // one queue: the contention this bench isolates
  // Batched probes keep the per-message RPC dispatch cost (which is
  // FIFO at the endpoint) negligible next to index-queue occupancy, so
  // the isolation contrast measures the queue policy itself.
  o.lookup_batch = 16;
  o.fair_queueing = fair_queueing;
  o.tenant_id = tenant;
  o.coord_port = coord_port;
  o.ckpt_dir = "/ckpt/t" + std::to_string(tenant);
  return o;
}

/// Two computations on one kernel: `host` (tenant 1) owns the service,
/// `guest` (tenant 2) attaches to it.
struct TenantWorld {
  sim::Cluster cluster;
  core::DmtcpControl host;
  core::DmtcpControl guest;
  TenantWorld(int nodes, core::DmtcpOptions host_opts,
              core::DmtcpOptions guest_opts, u64 seed)
      : cluster([&] {
          auto cfg = sim::Cluster::lab_cluster(nodes);
          cfg.seed = seed;
          cfg.jitter_sigma = sim::params::kJitterSigma;
          return cfg;
        }()),
        host(cluster.kernel(), host_opts),
        guest(host, guest_opts) {
    apps::register_desktop_programs(cluster.kernel());
  }
  sim::Kernel& k() { return cluster.kernel(); }
};

Pid launch_app(core::DmtcpControl& ctl, NodeId node, const std::string& tag) {
  const std::string prof = apps::desktop_profiles().front().name;
  return ctl.launch(node, "desktop_app", {prof, "0", tag});
}

void add_ballast(sim::Kernel& k, Pid pid, const std::string& name,
                 sim::MemKind kind, u64 bytes, u64 seed) {
  sim::Process* p = k.find_process(pid);
  auto& seg = p->mem().add(name, kind, bytes);
  seg.data.fill(0, bytes, sim::ExtentKind::kRand, seed);
}

/// Re-write a segment with its original seed: the pages are dirtied (the
/// next incremental round rescans and probes them) but the content — and
/// so every chunk key — is unchanged, making the round a pure dedup-probe
/// storm with no stores.
void touch_ballast(sim::Kernel& k, Pid pid, const std::string& name,
                   u64 bytes, u64 seed) {
  sim::Process* p = k.find_process(pid);
  auto* seg = p->mem().find(name);
  seg->data.fill(0, bytes, sim::ExtentKind::kRand, seed);
}

// Probe windows snapshot the tenant's wait histogram before the measured
// phase and read the delta after; the delta's quantiles are bucketed
// (<= 0.4% relative error), well inside the baseline tolerance.

struct ArmResult {
  double victim_p99_ms = 0;
  double victim_avg_ms = 0;
  u64 victim_samples = 0;
  double victim_ckpt_seconds = 0;
  double storm_ckpt_seconds = 0;  // 0 in the solo arm
  u64 cross_tenant_shared_bytes = 0;
  bool restart_ok = false;
  double restart_seconds = 0;
  u64 lost_chunks = 0;
};

/// One full arm: warm both tenants to a resident generation, then measure
/// the victim's probe-only round — alone, or beside the noisy tenant's
/// concurrent probe storm.
ArmResult run_arm(bool storm, bool fair_queueing, int ranks, u64 lib_bytes,
                  u64 priv_bytes, u64 victim_bytes, bool measure_restart) {
  const int store_node = ranks + 1;
  TenantWorld w(ranks + 1 + kStoreNodes,
                tenant_opts(1, 7779, store_node, fair_queueing),
                tenant_opts(2, 7791, store_node, fair_queueing),
                0x7e2a);
  // The victim's weight is the QoS knob under test: 4x the storm's share.
  w.guest.shared().opts.tenant_weight = 4.0;
  w.host.shared().store_service->tenants().configure(
      2, {/*weight=*/4.0, /*inflight_budget_bytes=*/0,
          /*keep_generations=*/2, /*hot_generations=*/0});

  std::vector<Pid> noisy;
  for (int n = 0; n < ranks; ++n) {
    noisy.push_back(launch_app(w.host, n, "p" + std::to_string(n)));
  }
  const Pid victim = launch_app(w.guest, ranks, "victim");
  w.host.run_for(50 * timeconst::kMillisecond);
  for (int n = 0; n < ranks; ++n) {
    add_ballast(w.k(), noisy[static_cast<size_t>(n)], "libshared",
                sim::MemKind::kLib, lib_bytes, 0x11B);
    add_ballast(w.k(), noisy[static_cast<size_t>(n)], "private",
                sim::MemKind::kHeap, priv_bytes,
                0xB0 + static_cast<u64>(n));
  }
  add_ballast(w.k(), victim, "libshared", sim::MemKind::kLib, lib_bytes,
              0x11B);
  add_ballast(w.k(), victim, "private", sim::MemKind::kHeap, victim_bytes,
              0x71C);

  // Warm generation: both tenants' chunks become resident. Touching every
  // ballast page (same content) makes the measured rounds pure dedup-probe
  // traffic — the contention that matters at the shard queue: probe
  // requests are light on the wire (a header + key) but each occupies a
  // full index probe of queue service, so the storm's arrival rate far
  // outruns the drain rate and a real backlog forms.
  w.host.checkpoint_now();
  w.guest.checkpoint_now();
  for (int n = 0; n < ranks; ++n) {
    touch_ballast(w.k(), noisy[static_cast<size_t>(n)], "libshared",
                  lib_bytes, 0x11B);
    touch_ballast(w.k(), noisy[static_cast<size_t>(n)], "private",
                  priv_bytes, 0xB0 + static_cast<u64>(n));
  }
  touch_ballast(w.k(), victim, "libshared", lib_bytes, 0x11B);
  touch_ballast(w.k(), victim, "private", victim_bytes, 0x71C);

  auto& svc = *w.host.shared().store_service;
  if (storm) {
    // Fire the storm and let it through its suspend/drain stages so the
    // victim's probe window lands inside the storm's bulk-store phase.
    w.host.request_checkpoint();
    w.host.run_for(30 * timeconst::kMillisecond);
  }
  const obs::Histogram wait_before = svc.tenants().stats(2).wait;
  w.guest.checkpoint_now();
  if (storm) {
    w.host.run_until(
        [&] {
          const auto& rounds = w.host.stats().rounds;
          return rounds.size() >= 2 && rounds.back().refilled != 0;
        },
        300 * timeconst::kSecond);
  }

  ArmResult r;
  const obs::Histogram window =
      svc.tenants().stats(2).wait.delta_since(wait_before);
  r.victim_p99_ms = window.quantile(0.99) * 1e3;
  r.victim_avg_ms = window.mean() * 1e3;
  r.victim_samples = window.count();
  r.victim_ckpt_seconds = w.guest.stats().rounds.back().total_seconds();
  if (storm) {
    r.storm_ckpt_seconds = w.host.stats().rounds.back().total_seconds();
  }
  const auto by_group = svc.repo().shared_bytes_by_group();
  const auto it = by_group.find({"t1", "t2"});
  if (it != by_group.end()) r.cross_tenant_shared_bytes = it->second;
  if (measure_restart) {
    // Victim-only kill + restart beside the live neighbor: the restart
    // fetches ride the strict-priority band and read every chunk back.
    w.guest.kill_computation();
    const auto& rr = w.guest.restart();
    r.restart_ok = !rr.needs_restore && rr.procs == 1;
    r.restart_seconds = rr.total_seconds();
    r.lost_chunks = rr.lost_chunks;
  }
  return r;
}

struct AdmissionResult {
  u64 budget_bytes = 0;
  u64 held_requests = 0;
  double wait_seconds = 0;
};

/// A small world where the noisy tenant gets a tight in-flight byte
/// budget: its first (store-heavy) round shows holds at the tenant edge.
AdmissionResult run_admission(u64 lib_bytes, u64 priv_bytes) {
  constexpr u64 kBudget = 256 * 1024;
  const int ranks = 2;
  auto host_opts = tenant_opts(1, 7779, ranks + 1, /*fair_queueing=*/true);
  host_opts.tenant_budget_bytes = kBudget;
  TenantWorld w(ranks + 1 + kStoreNodes, host_opts,
                tenant_opts(2, 7791, ranks + 1, /*fair_queueing=*/true),
                0xad31);
  std::vector<Pid> noisy;
  for (int n = 0; n < ranks; ++n) {
    noisy.push_back(launch_app(w.host, n, "p" + std::to_string(n)));
  }
  w.host.run_for(50 * timeconst::kMillisecond);
  for (int n = 0; n < ranks; ++n) {
    add_ballast(w.k(), noisy[static_cast<size_t>(n)], "libshared",
                sim::MemKind::kLib, lib_bytes, 0x11B);
    add_ballast(w.k(), noisy[static_cast<size_t>(n)], "private",
                sim::MemKind::kHeap, priv_bytes,
                0xB0 + static_cast<u64>(n));
  }
  const auto& round = w.host.checkpoint_now();
  AdmissionResult a;
  a.budget_bytes = kBudget;
  a.held_requests = round.store_admission_held;
  a.wait_seconds = round.store_admission_wait_seconds;
  return a;
}

}  // namespace

int main() {
  const int ranks = env_int("DSIM_TEN_RANKS", 8);
  const u64 lib_bytes =
      static_cast<u64>(env_int("DSIM_TEN_LIB_MB", 2)) * 1024 * 1024;
  const u64 priv_bytes =
      static_cast<u64>(env_int("DSIM_TEN_PRIV_MB", 32)) * 1024 * 1024;
  const u64 victim_bytes =
      static_cast<u64>(env_int("DSIM_TEN_VIC_KB", 768)) * 1024;

  const ArmResult solo =
      run_arm(/*storm=*/false, /*fair_queueing=*/true, ranks, lib_bytes,
              priv_bytes, victim_bytes, /*measure_restart=*/false);
  const ArmResult fq =
      run_arm(/*storm=*/true, /*fair_queueing=*/true, ranks, lib_bytes,
              priv_bytes, victim_bytes, /*measure_restart=*/true);
  const ArmResult nofq =
      run_arm(/*storm=*/true, /*fair_queueing=*/false, ranks, lib_bytes,
              priv_bytes, victim_bytes, /*measure_restart=*/false);

  Table t({"arm", "victim_p99_ms", "victim_avg_ms", "samples",
           "victim_ckpt_s", "storm_ckpt_s"});
  const auto row = [&](const char* name, const ArmResult& r) {
    t.add_row({name, Table::fmt(r.victim_p99_ms, 3),
               Table::fmt(r.victim_avg_ms, 3),
               Table::fmt(static_cast<double>(r.victim_samples), 0),
               Table::fmt(r.victim_ckpt_seconds),
               Table::fmt(r.storm_ckpt_seconds)});
  };
  row("solo", solo);
  row("fq", fq);
  row("nofq", nofq);
  t.print("Victim-tenant lookup p99 beside a noisy neighbor: solo vs fair "
          "queueing vs FIFO ablation");

  const AdmissionResult adm = run_admission(lib_bytes, priv_bytes);

  const double fq_ratio =
      solo.victim_p99_ms > 0 ? fq.victim_p99_ms / solo.victim_p99_ms : 0;
  const double nofq_ratio =
      solo.victim_p99_ms > 0 ? nofq.victim_p99_ms / solo.victim_p99_ms : 0;
  std::printf("fq p99 %.3f ms (%.2fx solo), nofq p99 %.3f ms (%.2fx solo); "
              "cross-tenant dedup %llu bytes; victim restart %s "
              "(%llu chunks lost); admission held %llu stores "
              "(%.3f s total wait)\n",
              fq.victim_p99_ms, fq_ratio, nofq.victim_p99_ms, nofq_ratio,
              static_cast<unsigned long long>(fq.cross_tenant_shared_bytes),
              fq.restart_ok ? "ok" : "FAILED",
              static_cast<unsigned long long>(fq.lost_chunks),
              static_cast<unsigned long long>(adm.held_requests),
              adm.wait_seconds);

  std::ofstream json("BENCH_tenants.json");
  const auto arm_json = [&](const char* name, const ArmResult& r,
                            bool comma) {
    json << "    {\"name\": \"" << name
         << "\", \"victim_p99_ms\": " << r.victim_p99_ms
         << ", \"victim_samples\": " << r.victim_samples
         << ", \"victim_ckpt_seconds\": " << r.victim_ckpt_seconds
         << ", \"storm_ckpt_seconds\": " << r.storm_ckpt_seconds << "}"
         << (comma ? "," : "") << "\n";
  };
  json << "{\n  \"config\": {\"ranks\": " << ranks
       << ", \"lib_bytes\": " << lib_bytes
       << ", \"priv_bytes\": " << priv_bytes
       << ", \"victim_bytes\": " << victim_bytes << "},\n  \"arms\": [\n";
  arm_json("solo", solo, true);
  arm_json("fq", fq, true);
  arm_json("nofq", nofq, false);
  json << "  ],\n  \"dedup\": {\"cross_tenant_shared_bytes\": "
       << fq.cross_tenant_shared_bytes
       << "},\n  \"restart\": {\"ok\": " << (fq.restart_ok ? "true" : "false")
       << ", \"seconds\": " << fq.restart_seconds
       << ", \"lost_chunks\": " << fq.lost_chunks
       << "},\n  \"admission\": {\"budget_bytes\": " << adm.budget_bytes
       << ", \"held_requests\": " << adm.held_requests
       << ", \"wait_seconds\": " << adm.wait_seconds
       << "},\n  \"summary\": {\"solo_p99_ms\": " << solo.victim_p99_ms
       << ", \"fq_p99_ms\": " << fq.victim_p99_ms
       << ", \"nofq_p99_ms\": " << nofq.victim_p99_ms
       << ", \"fq_ratio\": " << fq_ratio
       << ", \"nofq_ratio\": " << nofq_ratio
       << ", \"fq_isolation_holds\": " << (fq_ratio <= 2.0 ? "true" : "false")
       << ", \"nofq_degrades\": "
       << (nofq_ratio >= 4.0 && nofq.victim_p99_ms > fq.victim_p99_ms
               ? "true"
               : "false")
       << ", \"cross_tenant_shared_bytes\": " << fq.cross_tenant_shared_bytes
       << ", \"lost_chunks\": " << fq.lost_chunks << "}\n}\n";

  std::printf("wrote BENCH_tenants.json\n");
  return 0;
}
