// Micro-benchmarks of the substrate (google-benchmark): compressor
// throughput by content class, sparse ByteImage operations, event-loop
// dispatch, CRC32. These are host-side costs, not virtual-time results.
#include <benchmark/benchmark.h>

#include "compress/compressor.h"
#include "util/serialize.h"
#include "sim/byte_image.h"
#include "sim/event_loop.h"
#include "util/crc32.h"
#include "util/rng.h"

namespace {

using namespace dsim;

std::vector<std::byte> make_data(const std::string& kind, size_t n) {
  std::vector<std::byte> data(n);
  Rng rng(42);
  if (kind == "zero") return data;
  if (kind == "rand") {
    for (auto& b : data) b = static_cast<std::byte>(rng.next_u64());
    return data;
  }
  // "text": structured, repetitive content.
  const char* words[] = {"checkpoint ", "restart ", "drain ", "socket "};
  size_t i = 0;
  while (i < n) {
    const char* w = words[rng.next_below(4)];
    for (const char* p = w; *p && i < n; ++p) data[i++] = std::byte(*p);
  }
  return data;
}

void BM_GzipishCompress(benchmark::State& state, const std::string& kind) {
  auto data = make_data(kind, 1 << 20);
  const auto& codec = compress::codec(compress::CodecKind::kGzipish);
  for (auto _ : state) {
    auto out = codec.compress(data);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * (1 << 20));
}
BENCHMARK_CAPTURE(BM_GzipishCompress, zero, std::string("zero"));
BENCHMARK_CAPTURE(BM_GzipishCompress, text, std::string("text"));
BENCHMARK_CAPTURE(BM_GzipishCompress, rand, std::string("rand"));

void BM_GzipishRoundTrip(benchmark::State& state) {
  auto data = make_data("text", 256 << 10);
  const auto& codec = compress::codec(compress::CodecKind::kGzipish);
  for (auto _ : state) {
    auto out = codec.decompress(codec.compress(data));
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_GzipishRoundTrip);

void BM_ByteImageWrite(benchmark::State& state) {
  sim::ByteImage img(64 << 20);
  std::vector<std::byte> chunk(4096, std::byte{0x5a});
  u64 off = 0;
  for (auto _ : state) {
    img.write(off % (60 << 20), chunk);
    off += 4096;
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 4096);
}
BENCHMARK(BM_ByteImageWrite);

using dsim::ByteWriter;

void BM_ByteImageSerializeSparse(benchmark::State& state) {
  sim::ByteImage img(1ull << 30);  // 1 GB virtual, mostly pattern
  img.fill(0, 1ull << 30, sim::ExtentKind::kRand, 7);
  std::vector<std::byte> chunk(4096, std::byte{0x5a});
  img.write(4096, chunk);
  for (auto _ : state) {
    ByteWriter w;
    img.serialize(w);
    benchmark::DoNotOptimize(w.size());
  }
}
BENCHMARK(BM_ByteImageSerializeSparse);

void BM_EventLoopPostRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    for (int i = 0; i < 1000; ++i) {
      loop.post_in(i, [] {});
    }
    loop.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventLoopPostRun);

void BM_Crc32(benchmark::State& state) {
  auto data = make_data("rand", 1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32(data));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * (1 << 20));
}
BENCHMARK(BM_Crc32);

}  // namespace

BENCHMARK_MAIN();
