// Erasure-coded chunk storage vs replication: the byte-economics sweep.
//
// Part A (overhead): the same workload checkpoints into two stores — (k,m)
// Reed-Solomon striping and R=2 replication — over identically-seeded
// clusters. The physical footprint (sum of per-node stored bytes) must show
// striping's (k+m)/k factor beating replication's 2x: 1.5x at (4,2), an
// overhead ratio of 0.75.
//
// Part B (restart sweep): a fresh erasure world per point loses 0..m nodes
// *immediately* before restart — no heal window — so every read through a
// dead fragment is a degraded read: parity substitutes, decode CPU lands on
// the restart path. Every point must complete with zero lost chunks.
//
// Part C (rebuild traffic): one node dies under each scheme and the heal
// daemon runs to full strength. Replication re-stores full containers
// (read + ship + write = 3x the chunk bytes per heal at F=1); the erasure
// healer rebuilds only the dead fragments from k survivors
// ((2k + 2F - 1) x frag_bytes = 2.25x at (4,2), F=1). Compared per healed
// chunk, since a dead node touches more erasure chunks (k+m homes each)
// than replication chunks (2 homes each).
//
// Part D (tiering): with --cold-erasure armed, generations falling out of
// the --hot-generations window re-stripe to the wider cold profile in the
// background; the demotion count and re-striped bytes are reported.
//
// Emits BENCH_erasure.json (checked by the CI bench-smoke job).
//
// Knobs: DSIM_ER_RANKS (8), DSIM_ER_LIB_MB (8), DSIM_ER_PRIV_MB (4),
// DSIM_ER_K (4), DSIM_ER_M (2).
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "ckptstore/service.h"

using namespace dsim;
using namespace dsim::bench;

namespace {

core::DmtcpOptions base_opts(int ranks) {
  core::DmtcpOptions opts;
  opts.incremental = true;
  opts.codec = compress::CodecKind::kNone;  // exact byte accounting
  opts.chunking = ckptstore::ChunkingMode::kCdc;
  opts.cdc_min_bytes = 4 * 1024;
  opts.cdc_avg_bytes = 16 * 1024;
  opts.cdc_max_bytes = 64 * 1024;
  opts.dedup_scope = core::DedupScope::kCluster;
  (void)ranks;
  return opts;
}

core::DmtcpOptions erasure_opts(int ranks, int k, int m) {
  auto opts = base_opts(ranks);
  opts.erasure_k = k;
  opts.erasure_m = m;
  return opts;
}

core::DmtcpOptions replication_opts(int ranks) {
  auto opts = base_opts(ranks);
  opts.chunk_replicas = 2;
  return opts;
}

std::vector<Pid> launch_ranks(World& w, int ranks, u64 lib_bytes,
                              u64 priv_bytes) {
  const std::string prof = apps::desktop_profiles().front().name;
  std::vector<Pid> pids;
  for (int n = 0; n < ranks; ++n) {
    pids.push_back(w.ctl->launch(n, "desktop_app",
                                 {prof, "0", "p" + std::to_string(n)}));
  }
  w.ctl->run_for(50 * timeconst::kMillisecond);
  for (int n = 0; n < ranks; ++n) {
    sim::Process* p = w.k().find_process(pids[static_cast<size_t>(n)]);
    auto& lib = p->mem().add("libshared", sim::MemKind::kLib, lib_bytes);
    lib.data.fill(0, lib_bytes, sim::ExtentKind::kRand, 0x11B);
    auto& priv = p->mem().add("private", sim::MemKind::kHeap, priv_bytes);
    priv.data.fill(0, priv_bytes, sim::ExtentKind::kRand,
                   0xE0 + static_cast<u64>(n));
  }
  return pids;
}

u64 stored_bytes(core::DmtcpControl& ctl) {
  u64 total = 0;
  for (u64 b : ctl.shared().store_service->placement().bytes_per_node()) {
    total += b;
  }
  return total;
}

/// Run the heal daemon to completion after `victim` dies; returns rounds of
/// 250 ms the drain took (bounded — a stuck daemon must not hang the bench).
int heal_to_full_strength(World& w) {
  auto& svc = *w.ctl->shared().store_service;
  int waits = 0;
  while (svc.placement().degraded_count() > 0 && waits < 40) {
    w.ctl->run_for(250 * timeconst::kMillisecond);
    ++waits;
  }
  return waits;
}

struct OverheadResult {
  u64 erasure_stored = 0;
  u64 replication_stored = 0;
  u64 logical_bytes = 0;  // unique container bytes, from the R=2 footprint
  double erasure_factor = 0;      // stored / logical, expect (k+m)/k
  double replication_factor = 0;  // expect 2.0
  double overhead_ratio = 0;      // erasure_stored / replication_stored
};

struct SweepPoint {
  int losses = 0;
  double restart_seconds = 0;
  u64 lost_chunks = 0;
  bool restart_ok = false;
};

struct RebuildResult {
  u64 moved_bytes = 0;
  u64 healed_chunks = 0;
  u64 rebuilt_fragments = 0;
  double moved_per_chunk = 0;
  int drain_waits = 0;
  u64 lost_chunks = 0;
};

struct TieringResult {
  u64 demoted_chunks = 0;
  u64 demoted_bytes = 0;
  u64 stored_after = 0;
  bool restart_ok = false;
};

}  // namespace

int main() {
  const int ranks = env_int("DSIM_ER_RANKS", 8);
  const int k = env_int("DSIM_ER_K", 4);
  const int m = env_int("DSIM_ER_M", 2);
  const u64 lib_bytes =
      static_cast<u64>(env_int("DSIM_ER_LIB_MB", 8)) * 1024 * 1024;
  const u64 priv_bytes =
      static_cast<u64>(env_int("DSIM_ER_PRIV_MB", 4)) * 1024 * 1024;
  // Every fragment needs its own node, plus headroom to survive m losses
  // and still have k+m alive homes for the rebuilt fragments.
  const int nodes = std::max(ranks, k + m + m);

  // --- Part A: stored-byte overhead, erasure vs R=2 ------------------------
  OverheadResult ov;
  {
    World we(nodes, erasure_opts(ranks, k, m), 0xE5A5);
    launch_ranks(we, ranks, lib_bytes, priv_bytes);
    we.ctl->checkpoint_now();
    ov.erasure_stored = stored_bytes(*we.ctl);

    World wr(nodes, replication_opts(ranks), 0xE5A5);
    launch_ranks(wr, ranks, lib_bytes, priv_bytes);
    wr.ctl->checkpoint_now();
    ov.replication_stored = stored_bytes(*wr.ctl);

    ov.logical_bytes = ov.replication_stored / 2;
    ov.erasure_factor = ov.logical_bytes == 0
                            ? 0
                            : static_cast<double>(ov.erasure_stored) /
                                  static_cast<double>(ov.logical_bytes);
    ov.replication_factor = 2.0;
    ov.overhead_ratio = ov.replication_stored == 0
                            ? 0
                            : static_cast<double>(ov.erasure_stored) /
                                  static_cast<double>(ov.replication_stored);
    std::printf(
        "overhead: erasure(%d,%d) %s MB vs R=2 %s MB (%.3fx vs 2.0x "
        "logical; ratio %.3f)\n",
        k, m, mb(ov.erasure_stored).c_str(), mb(ov.replication_stored).c_str(),
        ov.erasure_factor, ov.overhead_ratio);
  }

  // --- Part B: restart with 0..m node losses (degraded reads) --------------
  std::vector<SweepPoint> sweep;
  for (int losses = 0; losses <= m; ++losses) {
    World w(nodes, erasure_opts(ranks, k, m), 0xE5A5);
    launch_ranks(w, ranks, lib_bytes, priv_bytes);
    w.ctl->checkpoint_now();
    auto& svc = *w.ctl->shared().store_service;
    // Kill the highest non-rank nodes back to back: no heal window, the
    // restart must read through parity.
    for (int f = 0; f < losses; ++f) {
      svc.fail_node(nodes - 1 - f);
    }
    SweepPoint pt;
    pt.losses = losses;
    pt.lost_chunks = svc.placement().lost_chunks();
    w.ctl->kill_computation();
    const auto& rr = w.ctl->restart();
    pt.restart_seconds = rr.total_seconds();
    pt.restart_ok = !rr.needs_restore && rr.procs == ranks;
    sweep.push_back(pt);
    std::printf("restart with %d lost node(s): %.3f s, %llu lost chunks, %s\n",
                losses, pt.restart_seconds,
                static_cast<unsigned long long>(pt.lost_chunks),
                pt.restart_ok ? "ok" : "FAILED");
  }

  // --- Part C: rebuild traffic after one node death ------------------------
  const auto rebuild_run = [&](core::DmtcpOptions opts) {
    RebuildResult rb;
    World w(nodes, opts, 0xE5A5);
    launch_ranks(w, ranks, lib_bytes, priv_bytes);
    w.ctl->checkpoint_now();
    auto& svc = *w.ctl->shared().store_service;
    svc.fail_node(nodes - 1);
    rb.drain_waits = heal_to_full_strength(w);
    rb.moved_bytes = svc.stats().heal_moved_bytes;
    rb.healed_chunks = svc.stats().rereplicated_chunks;
    rb.rebuilt_fragments = svc.stats().rebuilt_fragments;
    rb.moved_per_chunk = rb.healed_chunks == 0
                             ? 0
                             : static_cast<double>(rb.moved_bytes) /
                                   static_cast<double>(rb.healed_chunks);
    rb.lost_chunks = svc.placement().lost_chunks();
    return rb;
  };
  const RebuildResult rbe = rebuild_run(erasure_opts(ranks, k, m));
  const RebuildResult rbr = rebuild_run(replication_opts(ranks));
  const double rebuild_ratio =
      rbr.moved_per_chunk == 0 ? 0 : rbe.moved_per_chunk / rbr.moved_per_chunk;
  std::printf(
      "rebuild: erasure moved %s MB over %llu chunks (%.0f B/chunk), R=2 "
      "moved %s MB over %llu chunks (%.0f B/chunk); per-chunk ratio %.3f\n",
      mb(rbe.moved_bytes).c_str(),
      static_cast<unsigned long long>(rbe.healed_chunks), rbe.moved_per_chunk,
      mb(rbr.moved_bytes).c_str(),
      static_cast<unsigned long long>(rbr.healed_chunks), rbr.moved_per_chunk,
      rebuild_ratio);

  // --- Part D: cold-tier demotion ------------------------------------------
  TieringResult tier;
  {
    auto opts = erasure_opts(ranks, k, m);
    opts.cold_erasure_k = std::min(k + m, nodes - m);
    opts.cold_erasure_m = m;
    opts.hot_generations = 1;
    const int cold_k = opts.cold_erasure_k;
    World w(nodes, opts, 0xE5A5);
    const auto pids = launch_ranks(w, ranks, lib_bytes, priv_bytes);
    w.ctl->checkpoint_now();
    // Rewrite every rank's private ballast: generation 1 stores new chunks
    // and strands generation 0's private chunks outside the hot window.
    for (int n = 0; n < ranks; ++n) {
      sim::Process* p = w.k().find_process(pids[static_cast<size_t>(n)]);
      if (p == nullptr) continue;
      sim::MemSegment* seg = p->mem().find("private");
      if (seg != nullptr) {
        seg->data.fill(0, priv_bytes, sim::ExtentKind::kRand,
                       0xF0 + static_cast<u64>(n));
      }
    }
    w.ctl->checkpoint_now();
    w.ctl->run_for(500 * timeconst::kMillisecond);  // demotion drains
    auto& svc = *w.ctl->shared().store_service;
    tier.demoted_chunks = svc.stats().demoted_chunks;
    tier.demoted_bytes = svc.stats().demoted_bytes;
    tier.stored_after = stored_bytes(*w.ctl);
    w.ctl->kill_computation();
    const auto& rr = w.ctl->restart();
    tier.restart_ok = !rr.needs_restore && rr.procs == ranks;
    std::printf(
        "tiering: %llu chunks (%s MB) re-striped to cold (%d,%d), restart "
        "%s\n",
        static_cast<unsigned long long>(tier.demoted_chunks),
        mb(tier.demoted_bytes).c_str(), cold_k, m,
        tier.restart_ok ? "ok" : "FAILED");
  }

  bool sweep_ok = true;
  u64 sweep_max_lost = 0;
  for (const auto& pt : sweep) {
    sweep_ok = sweep_ok && pt.restart_ok;
    sweep_max_lost = std::max(sweep_max_lost, pt.lost_chunks);
  }

  std::ofstream json("BENCH_erasure.json");
  json << "{\n  \"config\": {\"ranks\": " << ranks << ", \"nodes\": " << nodes
       << ", \"k\": " << k << ", \"m\": " << m
       << ", \"lib_bytes\": " << lib_bytes
       << ", \"priv_bytes\": " << priv_bytes << "},\n"
       << "  \"overhead\": {\"erasure_stored_bytes\": " << ov.erasure_stored
       << ", \"replication_stored_bytes\": " << ov.replication_stored
       << ", \"logical_bytes\": " << ov.logical_bytes
       << ", \"erasure_factor\": " << ov.erasure_factor
       << ", \"replication_factor\": " << ov.replication_factor
       << ", \"overhead_ratio\": " << ov.overhead_ratio << "},\n"
       << "  \"restart_sweep\": [";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const auto& pt = sweep[i];
    json << (i ? ", " : "") << "{\"losses\": " << pt.losses
         << ", \"restart_seconds\": " << pt.restart_seconds
         << ", \"lost_chunks\": " << pt.lost_chunks
         << ", \"restart_ok\": " << (pt.restart_ok ? "true" : "false") << "}";
  }
  json << "],\n"
       << "  \"rebuild\": {\"erasure_moved_bytes\": " << rbe.moved_bytes
       << ", \"erasure_healed_chunks\": " << rbe.healed_chunks
       << ", \"erasure_rebuilt_fragments\": " << rbe.rebuilt_fragments
       << ", \"erasure_moved_per_chunk\": " << rbe.moved_per_chunk
       << ", \"replication_moved_bytes\": " << rbr.moved_bytes
       << ", \"replication_healed_chunks\": " << rbr.healed_chunks
       << ", \"replication_moved_per_chunk\": " << rbr.moved_per_chunk
       << ", \"per_chunk_ratio\": " << rebuild_ratio
       << ", \"erasure_post_heal_lost_chunks\": " << rbe.lost_chunks
       << ", \"replication_post_heal_lost_chunks\": " << rbr.lost_chunks
       << "},\n"
       << "  \"tiering\": {\"demoted_chunks\": " << tier.demoted_chunks
       << ", \"demoted_bytes\": " << tier.demoted_bytes
       << ", \"stored_after_bytes\": " << tier.stored_after
       << ", \"restart_ok\": " << (tier.restart_ok ? "true" : "false")
       << "},\n"
       << "  \"summary\": {\"overhead_ratio\": " << ov.overhead_ratio
       << ", \"rebuild_per_chunk_ratio\": " << rebuild_ratio
       << ", \"sweep_max_lost_chunks\": " << sweep_max_lost
       << ", \"sweep_all_restarts_ok\": " << (sweep_ok ? "true" : "false")
       << ", \"restart_seconds_at_max_losses\": "
       << sweep.back().restart_seconds
       << ", \"demoted_chunks\": " << tier.demoted_chunks << "}\n}\n";

  std::printf("wrote BENCH_erasure.json\n");
  return 0;
}
