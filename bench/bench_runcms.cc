// §5.1 RunCMS: a 680 MB image with 540 mapped dynamic libraries (the CMS
// experiment software at CERN). Paper: checkpoint 25.2 s, restart 18.4 s,
// 225 MB gzip-compressed image.
#include "bench/bench_util.h"

using namespace dsim;
using namespace dsim::bench;

int main() {
  Table t({"metric", "measured", "paper"});
  Stats ck, rs;
  u64 size = 0, unsize = 0;
  for (int rep = 0; rep < reps(); ++rep) {
    World w(1, {}, mix_seed(0xc35, rep), false, 8);
    auto m = measure(
        w,
        [&](World& ww) {
          ww.ctl->launch(0, "desktop_app", {"runcms", "0", "runcms"});
        },
        150 * timeconst::kMillisecond, /*do_restart=*/true);
    ck.add(m.ckpt_seconds);
    rs.add(m.restart_seconds);
    size = m.compressed;
    unsize = m.uncompressed;
  }
  t.add_row({"checkpoint time (s)", Table::fmt(ck.mean()), "25.2"});
  t.add_row({"restart time (s)", Table::fmt(rs.mean()), "18.4"});
  t.add_row({"image size gz (MB)", mb(size), "225"});
  t.add_row({"memory image (MB)", mb(unsize), "680"});
  t.print("RunCMS (§5.1)");
  return 0;
}
