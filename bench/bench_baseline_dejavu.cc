// §2 comparison with DejaVu (Ruscio et al.): on a Chombo-like benchmark,
// DejaVu reports ~45 % runtime overhead (message logging + page-protection
// dirty tracking) with ten checkpoints per hour; DMTCP runs with essentially
// zero overhead between checkpoints and checkpoints in ~2 s. DejaVu was not
// publicly available, so its side is a published-cost model
// (src/baseline/dejavu.h); DMTCP's side is measured.
#include "baseline/dejavu.h"
#include "util/assertx.h"
#include "bench/bench_util.h"

using namespace dsim;
using namespace dsim::bench;

int main() {
  const int nodes = 8;
  const int np = 16;
  const u64 iters = 300;

  // Plain run time (no DMTCP at all).
  double plain_seconds = 0;
  {
    sim::Cluster cluster(sim::Cluster::lab_cluster(nodes));
    apps::register_distributed_programs(cluster.kernel());
    mpi::register_runtime_programs(cluster.kernel());
    auto& k = cluster.kernel();
    k.spawn_process(0, "orte_mpirun",
                    mpi::mpirun_argv(np, nodes, "chombo",
                                     {std::to_string(iters), "40", "chb"}),
                    {});
    const SimTime t0 = k.loop().now();
    // Step the loop until the result file appears (daemons never exit, so
    // running the loop dry would just hit the horizon).
    while (true) {
      auto inode = k.shared_fs().lookup("/shared/results/chb");
      if (inode && inode->data.size() > 0) break;
      if (!k.loop().run_until(k.loop().now() + 50 * timeconst::kMillisecond) &&
          k.loop().pending() == 0) {
        break;
      }
      DSIM_CHECK(to_seconds(k.loop().now() - t0) < 3600);
    }
    plain_seconds = to_seconds(k.loop().now() - t0);
  }

  // Under DMTCP with one checkpoint mid-run.
  double dmtcp_seconds = 0, dmtcp_ckpt = 0;
  {
    core::DmtcpOptions opts;
    World w(nodes, opts, 0xdead, false);
    const SimTime t0 = w.k().loop().now();
    w.ctl->launch(0, "orte_mpirun",
                  mpi::mpirun_argv(np, nodes, "chombo",
                                   {std::to_string(iters), "40", "chb"}));
    w.ctl->run_for(500 * timeconst::kMillisecond);
    dmtcp_ckpt = w.ctl->checkpoint_now().total_seconds();
    w.ctl->run_until(
        [&] {
          sim::Kernel& k = w.k();
          auto inode = k.shared_fs().lookup("/shared/results/chb");
          return inode && inode->data.size() > 0;
        },
        w.k().loop().now() + 3600 * timeconst::kSecond);
    dmtcp_seconds = to_seconds(w.k().loop().now() - t0);
  }

  // DejaVu projection from its published cost structure.
  baseline::DejaVuModel model;
  const u64 comm_bytes = static_cast<u64>(np) * iters * 8 * 1024;
  const u64 dirty = static_cast<u64>(np) * 40ull * 1024 * 1024;
  const double dejavu_seconds =
      baseline::dejavu_runtime_seconds(model, plain_seconds, comm_bytes,
                                       dirty);
  const double dejavu_ckpt = baseline::dejavu_checkpoint_seconds(model, dirty);

  Table t({"system", "run_s", "overhead_vs_plain", "ckpt_s"});
  t.add_row({"plain (no ckpt)", Table::fmt(plain_seconds), "-", "-"});
  t.add_row({"DMTCP (1 ckpt)", Table::fmt(dmtcp_seconds),
             Table::fmt((dmtcp_seconds - dmtcp_ckpt - plain_seconds) /
                            plain_seconds * 100.0,
                        1) +
                 "%",
             Table::fmt(dmtcp_ckpt)});
  t.add_row({"DejaVu (model)", Table::fmt(dejavu_seconds),
             Table::fmt((dejavu_seconds - plain_seconds) / plain_seconds *
                            100.0,
                        1) +
                 "%",
             Table::fmt(dejavu_ckpt)});
  t.print("DejaVu comparison (§2) — Chombo-like stencil, 16 ranks");
  return 0;
}
