// Observability bench: the cost and the fidelity of request tracing.
//
// Part A (overhead): the bench_tenants noisy-neighbor storm runs twice over
// identically-seeded worlds — tracing off, then tracing on. The tracer
// never posts events or charges simulated time, so the two runs must reach
// the measurement point at the *same* virtual instant: the JSON's
// trace_overhead_ratio is gated at <= 1.02 by CI but is 1.0 exactly by
// construction.
//
// Part B (fidelity): from the traced storm, the victim tenant's probe-window
// p99 is computed two ways — from the TenantStats wait histogram (bucketed,
// <= 0.4% error) and from the trace itself (exact sort over the root spans'
// durations, expanded by batch weight). The two must agree within 1%: the
// trace carries enough to reproduce BENCH_tenants' headline number.
//
// Part C (coverage): a traced erasure + async world kills a fragment home
// and heals back to strength, counting spans per subsystem (store.*, rpc.*,
// device.*, async.*, cluster.*) and asserting the balance invariants: zero
// open spans after quiesce, zero tiling violations anywhere.
//
// Emits BENCH_obs.json plus the trace artifacts BENCH_obs_trace.json /
// BENCH_obs_metrics.json (validated by tools/trace_report.py in CI).
//
// Knobs: DSIM_OBS_RANKS (6), DSIM_OBS_LIB_MB (2), DSIM_OBS_PRIV_MB (16),
// DSIM_OBS_VIC_KB (512).
#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "ckptasync/pipeline.h"
#include "ckptstore/service.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace dsim;
using namespace dsim::bench;

namespace {

constexpr int kStoreNodes = 1;

core::DmtcpOptions tenant_opts(int tenant, u16 coord_port, int store_node,
                               bool traced) {
  core::DmtcpOptions o;
  o.incremental = true;
  o.codec = compress::CodecKind::kNone;
  o.chunking = ckptstore::ChunkingMode::kCdc;
  o.cdc_min_bytes = 4 * 1024;
  o.cdc_avg_bytes = 16 * 1024;
  o.cdc_max_bytes = 64 * 1024;
  o.dedup_scope = core::DedupScope::kCluster;
  o.store_node = store_node;
  o.store_shards = 1;
  o.lookup_batch = 16;
  o.fair_queueing = true;
  o.tenant_id = tenant;
  o.coord_port = coord_port;
  o.ckpt_dir = "/ckpt/t" + std::to_string(tenant);
  if (traced && tenant == 1) {
    o.trace_out = "BENCH_obs_trace.json";
    o.metrics_out = "BENCH_obs_metrics.json";
  }
  return o;
}

struct TenantWorld {
  sim::Cluster cluster;
  core::DmtcpControl host;
  core::DmtcpControl guest;
  TenantWorld(int nodes, core::DmtcpOptions host_opts,
              core::DmtcpOptions guest_opts, u64 seed)
      : cluster([&] {
          auto cfg = sim::Cluster::lab_cluster(nodes);
          cfg.seed = seed;
          cfg.jitter_sigma = sim::params::kJitterSigma;
          return cfg;
        }()),
        host(cluster.kernel(), host_opts),
        guest(host, guest_opts) {
    apps::register_desktop_programs(cluster.kernel());
  }
  sim::Kernel& k() { return cluster.kernel(); }
};

Pid launch_app(core::DmtcpControl& ctl, NodeId node, const std::string& tag) {
  const std::string prof = apps::desktop_profiles().front().name;
  return ctl.launch(node, "desktop_app", {prof, "0", tag});
}

void add_ballast(sim::Kernel& k, Pid pid, const std::string& name,
                 sim::MemKind kind, u64 bytes, u64 seed) {
  sim::Process* p = k.find_process(pid);
  auto& seg = p->mem().add(name, kind, bytes);
  seg.data.fill(0, bytes, sim::ExtentKind::kRand, seed);
}

void touch_ballast(sim::Kernel& k, Pid pid, const std::string& name,
                   u64 bytes, u64 seed) {
  sim::Process* p = k.find_process(pid);
  auto* seg = p->mem().find(name);
  seg->data.fill(0, bytes, sim::ExtentKind::kRand, seed);
}

struct StormRun {
  double sim_seconds = 0;  // virtual clock at the (fixed) measurement point
  double hist_p99_ms = 0;
  double trace_p99_ms = 0;
  double p99_rel_err = 0;
  u64 victim_samples = 0;
  u64 spans_total = 0;
  u64 open_spans = 0;
  u64 tiling_violations = 0;
  std::map<std::string, u64> subsystem_spans;  // span-name prefix -> count
};

std::string subsystem_of(const char* name) {
  const char* dot = std::strchr(name, '.');
  return dot ? std::string(name, dot) : std::string(name);
}

/// The bench_tenants fq storm arm, optionally traced: warm both tenants,
/// fire the noisy tenant's probe storm, measure the victim's probe round
/// inside it, then quiesce and read the tracer.
StormRun run_storm(bool traced, int ranks, u64 lib_bytes, u64 priv_bytes,
                   u64 victim_bytes) {
  StormRun res;
  const int store_node = ranks + 1;
  TenantWorld w(ranks + 1 + kStoreNodes,
                tenant_opts(1, 7779, store_node, traced),
                tenant_opts(2, 7791, store_node, /*traced=*/false), 0x7e2a);
  w.guest.shared().opts.tenant_weight = 4.0;
  w.host.shared().store_service->tenants().configure(
      2, {/*weight=*/4.0, /*inflight_budget_bytes=*/0,
          /*keep_generations=*/2, /*hot_generations=*/0});

  std::vector<Pid> noisy;
  for (int n = 0; n < ranks; ++n) {
    noisy.push_back(launch_app(w.host, n, "p" + std::to_string(n)));
  }
  const Pid victim = launch_app(w.guest, ranks, "victim");
  w.host.run_for(50 * timeconst::kMillisecond);
  for (int n = 0; n < ranks; ++n) {
    add_ballast(w.k(), noisy[static_cast<size_t>(n)], "libshared",
                sim::MemKind::kLib, lib_bytes, 0x11B);
    add_ballast(w.k(), noisy[static_cast<size_t>(n)], "private",
                sim::MemKind::kHeap, priv_bytes, 0xB0 + static_cast<u64>(n));
  }
  add_ballast(w.k(), victim, "libshared", sim::MemKind::kLib, lib_bytes,
              0x11B);
  add_ballast(w.k(), victim, "private", sim::MemKind::kHeap, victim_bytes,
              0x71C);

  w.host.checkpoint_now();
  w.guest.checkpoint_now();
  for (int n = 0; n < ranks; ++n) {
    touch_ballast(w.k(), noisy[static_cast<size_t>(n)], "libshared",
                  lib_bytes, 0x11B);
    touch_ballast(w.k(), noisy[static_cast<size_t>(n)], "private",
                  priv_bytes, 0xB0 + static_cast<u64>(n));
  }
  touch_ballast(w.k(), victim, "libshared", lib_bytes, 0x11B);
  touch_ballast(w.k(), victim, "private", victim_bytes, 0x71C);

  auto& svc = *w.host.shared().store_service;
  w.host.request_checkpoint();
  w.host.run_for(30 * timeconst::kMillisecond);

  const obs::Tracer* tracer = w.host.shared().tracer.get();
  const size_t spans_before = tracer ? tracer->spans().size() : 0;
  const obs::Histogram wait_before = svc.tenants().stats(2).wait;
  w.guest.checkpoint_now();
  w.host.run_until(
      [&] {
        const auto& rounds = w.host.stats().rounds;
        return rounds.size() >= 2 && rounds.back().refilled != 0;
      },
      300 * timeconst::kSecond);

  const obs::Histogram window =
      svc.tenants().stats(2).wait.delta_since(wait_before);
  res.hist_p99_ms = window.quantile(0.99) * 1e3;
  res.victim_samples = window.count();

  if (tracer != nullptr) {
    // The trace-derived p99: every victim root span closed inside the probe
    // window (spans_ appends in close order, exactly the order the
    // histogram recorded), expanded to one sample per batched key.
    std::vector<double> samples;
    const auto& spans = tracer->spans();
    for (size_t i = spans_before; i < spans.size(); ++i) {
      const obs::SpanRecord& s = spans[i];
      if (s.tenant != 2 || s.parent != 0 || s.trace_id == 0) continue;
      if (std::strcmp(s.name, "store.lookup") != 0 &&
          std::strcmp(s.name, "store.fetch") != 0) {
        continue;
      }
      const double wait = to_seconds(s.end - s.begin);
      for (u64 k = 0; k < s.n; ++k) samples.push_back(wait);
    }
    if (!samples.empty()) {
      std::sort(samples.begin(), samples.end());
      const size_t rank = static_cast<size_t>(
          std::ceil(0.99 * static_cast<double>(samples.size())));
      res.trace_p99_ms = samples[rank - 1] * 1e3;
      res.p99_rel_err =
          std::fabs(res.hist_p99_ms - res.trace_p99_ms) / res.trace_p99_ms;
    }
  }

  // Quiesce: stop the heartbeat loop, drain in-flight probes, then the
  // open-span count must be zero (every span closed, nothing leaked).
  w.host.shared().membership->stop();
  w.host.run_for(200 * timeconst::kMillisecond);
  res.sim_seconds = to_seconds(w.k().loop().now());
  if (tracer != nullptr) {
    res.spans_total = tracer->spans().size();
    res.open_spans = tracer->open_spans();
    res.tiling_violations = tracer->tiling_violations();
    for (const obs::SpanRecord& s : tracer->spans()) {
      res.subsystem_spans[subsystem_of(s.name)]++;
    }
    w.host.flush_observability();  // BENCH_obs_trace.json + metrics
  }
  return res;
}

struct CoverageRun {
  u64 heal_spans = 0;
  u64 decode_spans = 0;
  u64 async_spans = 0;
  u64 heartbeat_spans = 0;
  u64 open_spans = 0;
  u64 tiling_violations = 0;
  bool healed = false;
};

/// Traced erasure + async-pipeline world: one generation drains through the
/// background pipeline, a fragment home dies, the heal daemon rebuilds.
CoverageRun run_coverage(int ranks, u64 lib_bytes, u64 priv_bytes) {
  CoverageRun res;
  core::DmtcpOptions o;
  o.incremental = true;
  o.ckpt_async = true;
  o.codec = compress::CodecKind::kNone;
  o.chunking = ckptstore::ChunkingMode::kCdc;
  o.cdc_min_bytes = 16 * 1024;
  o.cdc_avg_bytes = 64 * 1024;
  o.cdc_max_bytes = 256 * 1024;
  o.dedup_scope = core::DedupScope::kCluster;
  o.erasure_k = 2;
  o.erasure_m = 1;
  o.store_node = ranks;
  o.store_shards = 2;
  o.trace_out = "BENCH_obs_erasure_trace.json";
  const int nodes = ranks + 4;
  World w(nodes, o, 0x0B5E);
  const std::string prof = apps::desktop_profiles().front().name;
  std::vector<Pid> pids;
  for (int n = 0; n < ranks; ++n) {
    pids.push_back(w.ctl->launch(n, "desktop_app",
                                 {prof, "0", "p" + std::to_string(n)}));
  }
  w.ctl->run_for(50 * timeconst::kMillisecond);
  for (int n = 0; n < ranks; ++n) {
    sim::Process* p = w.k().find_process(pids[static_cast<size_t>(n)]);
    auto& lib = p->mem().add("libshared", sim::MemKind::kLib, lib_bytes);
    lib.data.fill(0, lib_bytes, sim::ExtentKind::kRand, 0x11B);
    auto& priv = p->mem().add("private", sim::MemKind::kHeap, priv_bytes);
    priv.data.fill(0, priv_bytes, sim::ExtentKind::kRand,
                   0xE0 + static_cast<u64>(n));
  }
  w.ctl->checkpoint_now();
  auto pipe = w.ctl->shared().async_pipeline;
  w.ctl->run_until([&] { return pipe->idle(); },
                   w.k().loop().now() + 600 * timeconst::kSecond);
  // A fragment home dies; the heal daemon decodes from k survivors and
  // rebuilds onto fresh homes — store.heal + store.erasure_decode spans.
  auto& svc = *w.ctl->shared().store_service;
  const NodeId victim_node = static_cast<NodeId>(nodes - 1);
  svc.fail_node(victim_node);
  int waits = 0;
  while (svc.placement().degraded_count() > 0 && waits < 40) {
    w.ctl->run_for(250 * timeconst::kMillisecond);
    ++waits;
  }
  res.healed = svc.placement().degraded_count() == 0;
  w.ctl->shared().membership->stop();
  w.ctl->run_for(200 * timeconst::kMillisecond);
  const obs::Tracer* tracer = w.ctl->shared().tracer.get();
  for (const obs::SpanRecord& s : tracer->spans()) {
    if (std::strcmp(s.name, "store.heal") == 0) res.heal_spans++;
    if (std::strcmp(s.name, "store.erasure_decode") == 0) res.decode_spans++;
    if (std::strncmp(s.name, "async.", 6) == 0) res.async_spans++;
    if (std::strcmp(s.name, "cluster.heartbeat") == 0) res.heartbeat_spans++;
  }
  res.open_spans = tracer->open_spans();
  res.tiling_violations = tracer->tiling_violations();
  w.ctl->flush_observability();
  return res;
}

}  // namespace

int main() {
  const int ranks = env_int("DSIM_OBS_RANKS", 6);
  const u64 lib_bytes =
      static_cast<u64>(env_int("DSIM_OBS_LIB_MB", 2)) * 1024 * 1024;
  const u64 priv_bytes =
      static_cast<u64>(env_int("DSIM_OBS_PRIV_MB", 16)) * 1024 * 1024;
  const u64 victim_bytes =
      static_cast<u64>(env_int("DSIM_OBS_VIC_KB", 512)) * 1024;

  const StormRun off =
      run_storm(/*traced=*/false, ranks, lib_bytes, priv_bytes, victim_bytes);
  const StormRun on =
      run_storm(/*traced=*/true, ranks, lib_bytes, priv_bytes, victim_bytes);
  const CoverageRun cov = run_coverage(2, lib_bytes, priv_bytes / 4);

  const double overhead_ratio =
      off.sim_seconds > 0 ? on.sim_seconds / off.sim_seconds : 0;

  Table t({"metric", "value"});
  t.add_row({"untraced_sim_s", Table::fmt(off.sim_seconds)});
  t.add_row({"traced_sim_s", Table::fmt(on.sim_seconds)});
  t.add_row({"trace_overhead_ratio", Table::fmt(overhead_ratio, 6)});
  t.add_row({"victim_p99_ms (hist)", Table::fmt(on.hist_p99_ms, 3)});
  t.add_row({"victim_p99_ms (trace)", Table::fmt(on.trace_p99_ms, 3)});
  t.add_row({"p99_rel_err", Table::fmt(on.p99_rel_err, 5)});
  t.add_row({"spans_total", Table::fmt(static_cast<double>(on.spans_total),
                                       0)});
  t.add_row({"open_spans", Table::fmt(static_cast<double>(on.open_spans),
                                      0)});
  t.add_row({"tiling_violations",
             Table::fmt(static_cast<double>(on.tiling_violations), 0)});
  t.print("Tracing overhead + trace-vs-histogram p99 fidelity");

  std::printf(
      "coverage: %llu heal, %llu decode, %llu async, %llu heartbeat spans; "
      "healed=%s open=%llu tiling=%llu\n",
      static_cast<unsigned long long>(cov.heal_spans),
      static_cast<unsigned long long>(cov.decode_spans),
      static_cast<unsigned long long>(cov.async_spans),
      static_cast<unsigned long long>(cov.heartbeat_spans),
      cov.healed ? "true" : "false",
      static_cast<unsigned long long>(cov.open_spans),
      static_cast<unsigned long long>(cov.tiling_violations));

  std::ofstream json("BENCH_obs.json");
  json << "{\n  \"config\": {\"ranks\": " << ranks
       << ", \"lib_bytes\": " << lib_bytes
       << ", \"priv_bytes\": " << priv_bytes
       << ", \"victim_bytes\": " << victim_bytes << "},\n"
       << "  \"overhead\": {\"untraced_sim_seconds\": " << off.sim_seconds
       << ", \"traced_sim_seconds\": " << on.sim_seconds
       << ", \"trace_overhead_ratio\": " << overhead_ratio << "},\n"
       << "  \"p99_check\": {\"hist_p99_ms\": " << on.hist_p99_ms
       << ", \"trace_p99_ms\": " << on.trace_p99_ms
       << ", \"p99_rel_err\": " << on.p99_rel_err
       << ", \"victim_samples\": " << on.victim_samples << "},\n"
       << "  \"spans\": {";
  bool first = true;
  for (const auto& [subsystem, count] : on.subsystem_spans) {
    json << (first ? "" : ", ") << "\"" << subsystem << "\": " << count;
    first = false;
  }
  json << "},\n"
       << "  \"coverage\": {\"heal_spans\": " << cov.heal_spans
       << ", \"decode_spans\": " << cov.decode_spans
       << ", \"async_spans\": " << cov.async_spans
       << ", \"heartbeat_spans\": " << cov.heartbeat_spans
       << ", \"healed\": " << (cov.healed ? "true" : "false")
       << ", \"open_spans\": " << cov.open_spans
       << ", \"tiling_violations\": " << cov.tiling_violations << "},\n"
       << "  \"summary\": {\"trace_overhead_ratio\": " << overhead_ratio
       << ", \"p99_rel_err\": " << on.p99_rel_err
       << ", \"spans_total\": " << on.spans_total
       << ", \"open_spans\": " << (on.open_spans + cov.open_spans)
       << ", \"tiling_violations\": "
       << (on.tiling_violations + cov.tiling_violations) << "}\n}\n";

  std::printf("wrote BENCH_obs.json, BENCH_obs_trace.json, "
              "BENCH_obs_metrics.json, BENCH_obs_erasure_trace.json\n");
  return 0;
}
