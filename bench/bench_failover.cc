// Cluster membership & shard failover under fire: the kill-mid-round sweep.
//
// Part A (failover): N ranks on N nodes checkpoint into a chunk store
// sharded across dedicated store nodes (R=2). The first round is the clean
// baseline. In the second round, the first shard endpoint's node is killed
// right after the drain barrier — the moment the write phase floods the
// shard queues. The membership service detects the silence (heartbeat
// misses), the failover manager re-homes the shard to the next live node in
// its rendezvous order, and the parked in-flight requests replay there: the
// round completes with elevated latency and zero caller-visible errors.
// Reported: the kill round's time vs baseline, shards re-homed, requests
// parked/replayed, rounds until the store is back at full replica strength
// (recovery_rounds), post-failover lost chunks (must be 0), and whether a
// subsequent restart succeeds reading only surviving replicas.
//
// Part B (rebalance): a fresh world checkpoints at S shards, then the shard
// count grows to S+1 between rounds. Consistent hashing (rendezvous over
// shard ids) moves exactly the keys whose winner changed — measured as the
// moved-bytes fraction, which must sit near 1/(S+1) — through batched
// metadata RPCs on the normal queues. A second round and a restart over the
// rebalanced store close the loop.
//
// Emits BENCH_failover.json (checked by the CI bench-smoke job).
//
// Knobs: DSIM_FO_RANKS (4), DSIM_FO_LIB_MB (2), DSIM_FO_PRIV_MB (1).
#include <fstream>
#include <vector>

#include "bench/bench_util.h"
#include "ckptstore/service.h"

using namespace dsim;
using namespace dsim::bench;

namespace {

constexpr int kStoreNodes = 2;
constexpr int kShards = 2;
constexpr int kRebalanceFrom = 3;
constexpr int kRebalanceTo = 4;

core::DmtcpOptions failover_opts(int ranks, int shards, int store_nodes) {
  core::DmtcpOptions opts;
  opts.incremental = true;
  opts.codec = compress::CodecKind::kNone;  // exact byte accounting
  opts.chunking = ckptstore::ChunkingMode::kCdc;
  opts.cdc_min_bytes = 4 * 1024;
  opts.cdc_avg_bytes = 16 * 1024;
  opts.cdc_max_bytes = 64 * 1024;
  opts.dedup_scope = core::DedupScope::kCluster;
  opts.chunk_replicas = 2;
  opts.store_node = ranks;  // first dedicated store node
  opts.store_shards = shards;
  (void)store_nodes;
  return opts;
}

std::vector<Pid> launch_ranks(World& w, int ranks, u64 lib_bytes,
                              u64 priv_bytes) {
  const std::string prof = apps::desktop_profiles().front().name;
  std::vector<Pid> pids;
  for (int n = 0; n < ranks; ++n) {
    pids.push_back(w.ctl->launch(n, "desktop_app",
                                 {prof, "0", "p" + std::to_string(n)}));
  }
  w.ctl->run_for(50 * timeconst::kMillisecond);
  for (int n = 0; n < ranks; ++n) {
    sim::Process* p = w.k().find_process(pids[static_cast<size_t>(n)]);
    auto& lib = p->mem().add("libshared", sim::MemKind::kLib, lib_bytes);
    lib.data.fill(0, lib_bytes, sim::ExtentKind::kRand, 0x11B);
    auto& priv = p->mem().add("private", sim::MemKind::kHeap, priv_bytes);
    priv.data.fill(0, priv_bytes, sim::ExtentKind::kRand,
                   0xB0 + static_cast<u64>(n));
  }
  return pids;
}

struct FailoverResult {
  double baseline_ckpt_seconds = 0;
  double kill_ckpt_seconds = 0;
  u64 rehomed_shards = 0;
  u64 replayed_requests = 0;
  u64 parked_requests = 0;
  int recovery_rounds = 0;  // rounds from the kill until degraded == 0
  u64 lost_chunks = 0;
  bool restart_ok = false;
};

FailoverResult run_failover(int ranks, u64 lib_bytes, u64 priv_bytes) {
  FailoverResult fr;
  World w(ranks + kStoreNodes, failover_opts(ranks, kShards, kStoreNodes),
          0xFA11);
  launch_ranks(w, ranks, lib_bytes, priv_bytes);

  // Round 1 populates the store (every chunk is a store); round 2 is the
  // clean *incremental* baseline the kill round is compared against —
  // comparing the kill round to the populate round would hide the failover
  // cost inside the store-vs-lookup difference.
  w.ctl->checkpoint_now();
  fr.baseline_ckpt_seconds = w.ctl->checkpoint_now().total_seconds();

  auto& svc = *w.ctl->shared().store_service;
  const NodeId victim = svc.endpoints().front();

  // Round 3: kill the first shard endpoint right after the drain barrier —
  // the write phase is flooding the shard queues as the node goes dark.
  const size_t round_idx = w.ctl->stats().rounds.size();
  w.ctl->request_checkpoint();
  w.ctl->run_until(
      [&] {
        return w.ctl->stats().rounds.size() > round_idx &&
               w.ctl->stats().rounds[round_idx].drained != 0;
      },
      w.k().loop().now() + 120 * timeconst::kSecond);
  svc.fail_node(victim);
  w.ctl->run_until(
      [&] { return w.ctl->stats().rounds[round_idx].refilled != 0; },
      w.k().loop().now() + 120 * timeconst::kSecond);
  const core::CkptRound& kill_round = w.ctl->stats().rounds[round_idx];
  fr.kill_ckpt_seconds = kill_round.total_seconds();
  fr.rehomed_shards = kill_round.failover_rehomed_shards;
  fr.replayed_requests = kill_round.failover_replayed_requests;
  fr.parked_requests = svc.stats().parked_requests;

  // Recovery: rounds (beyond the kill round) until every chunk is back at
  // full replica strength. The heal daemon drains in the background, so a
  // healthy configuration recovers within the kill round or the next one.
  fr.recovery_rounds = 0;
  while (svc.placement().degraded_count() > 0 && fr.recovery_rounds < 5) {
    w.ctl->run_for(250 * timeconst::kMillisecond);
    if (svc.placement().degraded_count() == 0) break;
    w.ctl->checkpoint_now();
    fr.recovery_rounds++;
  }
  fr.lost_chunks = svc.placement().lost_chunks();

  w.ctl->kill_computation();
  const auto& rr = w.ctl->restart();
  fr.restart_ok = !rr.needs_restore && rr.procs == ranks;
  return fr;
}

struct RebalanceResult {
  int old_shards = kRebalanceFrom;
  int new_shards = kRebalanceTo;
  u64 moved_keys = 0;
  u64 scanned_keys = 0;
  u64 moved_bytes = 0;
  u64 scanned_bytes = 0;
  double moved_fraction = 0;
  double expected_fraction = 1.0 / kRebalanceTo;
  double rebalance_seconds = 0;
  bool restart_ok = false;
};

RebalanceResult run_rebalance(int ranks, u64 lib_bytes, u64 priv_bytes) {
  RebalanceResult rb;
  World w(ranks + kRebalanceTo,
          failover_opts(ranks, kRebalanceFrom, kRebalanceTo), 0x4EBA);
  launch_ranks(w, ranks, lib_bytes, priv_bytes);
  w.ctl->checkpoint_now();

  auto& svc = *w.ctl->shared().store_service;
  const SimTime before = w.k().loop().now();
  w.ctl->set_store_shards(kRebalanceTo);
  rb.rebalance_seconds = to_seconds(w.k().loop().now() - before);
  const auto& ss = svc.stats();
  rb.moved_keys = ss.rebalance_moved_keys;
  rb.scanned_keys = ss.rebalance_scanned_keys;
  rb.moved_bytes = ss.rebalance_moved_bytes;
  rb.scanned_bytes = ss.rebalance_scanned_bytes;
  rb.moved_fraction =
      rb.scanned_bytes == 0
          ? 0
          : static_cast<double>(rb.moved_bytes) /
                static_cast<double>(rb.scanned_bytes);

  // The rebalanced store keeps serving: another round, then a restart.
  w.ctl->checkpoint_now();
  w.ctl->kill_computation();
  const auto& rr = w.ctl->restart();
  rb.restart_ok = !rr.needs_restore && rr.procs == ranks;
  return rb;
}

}  // namespace

int main() {
  const int ranks = env_int("DSIM_FO_RANKS", 4);
  const u64 lib_bytes =
      static_cast<u64>(env_int("DSIM_FO_LIB_MB", 2)) * 1024 * 1024;
  const u64 priv_bytes =
      static_cast<u64>(env_int("DSIM_FO_PRIV_MB", 1)) * 1024 * 1024;

  const FailoverResult fr = run_failover(ranks, lib_bytes, priv_bytes);
  std::printf(
      "failover: baseline %.3f s, kill-mid-round %.3f s (%llu shard(s) "
      "re-homed, %llu replayed), recovery %d round(s), %llu lost, restart "
      "%s\n",
      fr.baseline_ckpt_seconds, fr.kill_ckpt_seconds,
      static_cast<unsigned long long>(fr.rehomed_shards),
      static_cast<unsigned long long>(fr.replayed_requests),
      fr.recovery_rounds, static_cast<unsigned long long>(fr.lost_chunks),
      fr.restart_ok ? "ok" : "FAILED");

  const RebalanceResult rb = run_rebalance(ranks, lib_bytes, priv_bytes);
  std::printf(
      "rebalance %d -> %d shards: %llu/%llu keys moved (%.3f of bytes, "
      "expect ~%.3f) in %.3f s, restart %s\n",
      rb.old_shards, rb.new_shards,
      static_cast<unsigned long long>(rb.moved_keys),
      static_cast<unsigned long long>(rb.scanned_keys), rb.moved_fraction,
      rb.expected_fraction, rb.rebalance_seconds,
      rb.restart_ok ? "ok" : "FAILED");

  std::ofstream json("BENCH_failover.json");
  json << "{\n  \"config\": {\"ranks\": " << ranks
       << ", \"lib_bytes\": " << lib_bytes
       << ", \"priv_bytes\": " << priv_bytes
       << ", \"store_nodes\": " << kStoreNodes
       << ", \"shards\": " << kShards << "},\n"
       << "  \"failover\": {\"baseline_ckpt_seconds\": "
       << fr.baseline_ckpt_seconds
       << ", \"kill_ckpt_seconds\": " << fr.kill_ckpt_seconds
       << ", \"rehomed_shards\": " << fr.rehomed_shards
       << ", \"replayed_requests\": " << fr.replayed_requests
       << ", \"parked_requests\": " << fr.parked_requests
       << ", \"recovery_rounds\": " << fr.recovery_rounds
       << ", \"lost_chunks\": " << fr.lost_chunks
       << ", \"restart_ok\": " << (fr.restart_ok ? "true" : "false")
       << "},\n"
       << "  \"rebalance\": {\"old_shards\": " << rb.old_shards
       << ", \"new_shards\": " << rb.new_shards
       << ", \"moved_keys\": " << rb.moved_keys
       << ", \"scanned_keys\": " << rb.scanned_keys
       << ", \"moved_bytes\": " << rb.moved_bytes
       << ", \"scanned_bytes\": " << rb.scanned_bytes
       << ", \"moved_fraction\": " << rb.moved_fraction
       << ", \"expected_fraction\": " << rb.expected_fraction
       << ", \"rebalance_seconds\": " << rb.rebalance_seconds
       << ", \"restart_ok\": " << (rb.restart_ok ? "true" : "false")
       << "},\n"
       << "  \"summary\": {\"failover_recovery_rounds\": "
       << fr.recovery_rounds
       << ", \"post_failover_lost_chunks\": " << fr.lost_chunks
       << ", \"failover_restart_ok\": "
       << (fr.restart_ok ? "true" : "false")
       << ", \"replayed_requests\": " << fr.replayed_requests
       << ", \"kill_overhead_ratio\": "
       << (fr.baseline_ckpt_seconds > 0
               ? fr.kill_ckpt_seconds / fr.baseline_ckpt_seconds
               : 0)
       << ", \"rebalance_moved_fraction\": " << rb.moved_fraction
       << ", \"rebalance_expected_fraction\": " << rb.expected_fraction
       << ", \"rebalance_restart_ok\": "
       << (rb.restart_ok ? "true" : "false") << "}\n}\n";

  std::printf("wrote BENCH_failover.json\n");
  return 0;
}
