// Shared benchmark harness utilities.
//
// Every figure/table bench builds a fresh simulated cluster per repetition
// (seeded differently so device jitter produces the paper's error bars),
// brings the workload to a steady state, and measures checkpoint and
// restart rounds through DmtcpControl's stats. Output is an ASCII table on
// stdout (one row per data point) so the paper's plots can be re-drawn
// directly from the captured output.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "apps/desktop.h"
#include "apps/distributed.h"
#include "core/launch.h"
#include "mpi/runtime.h"
#include "sim/cluster.h"
#include "sim/model_params.h"
#include "util/stats.h"
#include "util/table.h"

namespace dsim::bench {

struct World {
  std::unique_ptr<sim::Cluster> cluster;
  std::unique_ptr<core::DmtcpControl> ctl;

  World(int nodes, core::DmtcpOptions opts, u64 seed, bool san = false,
        int cores = sim::params::kCoresPerNode) {
    auto cfg = sim::Cluster::lab_cluster(nodes, san);
    cfg.seed = seed;
    cfg.cores_per_node = cores;
    cfg.jitter_sigma = sim::params::kJitterSigma;
    cluster = std::make_unique<sim::Cluster>(cfg);
    ctl = std::make_unique<core::DmtcpControl>(cluster->kernel(), opts);
    apps::register_desktop_programs(cluster->kernel());
    apps::register_distributed_programs(cluster->kernel());
    mpi::register_runtime_programs(cluster->kernel());
  }
  sim::Kernel& k() { return cluster->kernel(); }
};

/// One measured checkpoint + (optional) restart.
struct Measured {
  double ckpt_seconds = 0;
  double restart_seconds = 0;
  u64 uncompressed = 0;
  u64 compressed = 0;
  int procs = 0;
  core::CkptRound round;
  core::RestartRun restart;
};

/// Bring up `launch`, wait `settle` of virtual time, checkpoint; optionally
/// kill + restart. The world is consumed.
inline Measured measure(World& w, const std::function<void(World&)>& launch,
                        SimTime settle, bool do_restart) {
  launch(w);
  w.ctl->run_for(settle);
  const auto& round = w.ctl->checkpoint_now();
  Measured m;
  m.round = round;
  m.ckpt_seconds = round.total_seconds();
  m.uncompressed = round.total_uncompressed;
  m.compressed = round.total_compressed;
  m.procs = round.procs;
  if (do_restart) {
    w.ctl->kill_computation();
    const auto& rr = w.ctl->restart();
    m.restart = rr;
    m.restart_seconds = rr.total_seconds();
  }
  return m;
}

inline int env_int(const char* name, int dflt) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : dflt;
}

/// Repetitions per data point (paper: 10; default trimmed for CI runtimes).
inline int reps() { return env_int("DSIM_BENCH_REPS", 3); }

inline std::string mb(u64 bytes) {
  return Table::fmt(static_cast<double>(bytes) / (1024.0 * 1024.0), 1);
}

}  // namespace dsim::bench
