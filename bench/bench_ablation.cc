// Ablations of DMTCP design choices called out by the paper:
//  - sync strategies after checkpoint (§5.2: +0.79 s for sync; "sync the
//    previous checkpoint instead" amortizes it);
//  - forked checkpointing (§5.3): user-visible stop time vs image-durable
//    time, and the copy-on-write compression running concurrently;
//  - compression codec choice (gzip default vs none vs RLE);
//  - centralized coordinator (§5.4): checkpoint time as the number of
//    participating processes grows with tiny images — the barrier cost.
#include "bench/bench_util.h"

using namespace dsim;
using namespace dsim::bench;

namespace {

Measured pargeant4_once(core::DmtcpOptions opts, int nodes, u64 seed) {
  World w(nodes, opts, seed, false);
  auto m = measure(
      w,
      [&](World& ww) {
        ww.ctl->launch(0, "mpdboot", {std::to_string(nodes)});
        ww.ctl->run_for(100 * timeconst::kMillisecond);
        ww.ctl->launch(0, "mpd_mpirun",
                       mpi::mpirun_argv(4 * nodes, nodes, "pargeant4",
                                        {"1000000", "20", "pg4"}));
      },
      400 * timeconst::kMillisecond, /*do_restart=*/false);
  if (opts.forked_checkpointing) {
    w.ctl->run_for(60 * timeconst::kSecond);  // background writer completes
    m.round = w.ctl->stats().rounds.back();
  }
  return m;
}

}  // namespace

int main() {
  const int nodes = env_int("DSIM_BENCH_NODES", 16);

  {
    Table t({"sync mode", "ckpt_s", "delta_vs_none_s"});
    double base = 0;
    for (const auto mode : {core::SyncMode::kNone, core::SyncMode::kSyncAfter,
                            core::SyncMode::kSyncPrevious}) {
      core::DmtcpOptions opts;
      opts.sync = mode;
      Stats ck;
      for (int rep = 0; rep < reps(); ++rep) {
        auto m = pargeant4_once(opts, nodes, mix_seed(0xab1, rep,
                                                      static_cast<u64>(mode)));
        ck.add(m.ckpt_seconds);
      }
      if (mode == core::SyncMode::kNone) base = ck.mean();
      const char* name = mode == core::SyncMode::kNone ? "none"
                         : mode == core::SyncMode::kSyncAfter
                             ? "sync-after (paper: +0.79s)"
                             : "sync-previous";
      t.add_row({name, Table::fmt(ck.mean()), Table::fmt(ck.mean() - base)});
    }
    t.print("Ablation — sync strategy (§5.2), ParGeant4");
  }

  {
    Table t({"mode", "stop_time_s", "image_durable_s"});
    for (const bool forked : {false, true}) {
      core::DmtcpOptions opts;
      opts.forked_checkpointing = forked;
      auto m = pargeant4_once(opts, nodes, mix_seed(0xab2, forked));
      const double durable =
          forked && m.round.background_done > 0
              ? to_seconds(m.round.background_done - m.round.requested)
              : m.ckpt_seconds;
      t.add_row({forked ? "forked (§5.3)" : "in-process",
                 Table::fmt(m.ckpt_seconds), Table::fmt(durable)});
    }
    t.print("Ablation — forked checkpointing: stop time vs durability");
  }

  {
    Table t({"codec", "ckpt_s", "size_MB"});
    for (const auto codec :
         {compress::CodecKind::kNone, compress::CodecKind::kRle,
          compress::CodecKind::kGzipish}) {
      core::DmtcpOptions opts;
      opts.codec = codec;
      World w(1, opts, mix_seed(0xab3, static_cast<u64>(codec)), false, 8);
      auto m = measure(
          w,
          [&](World& ww) {
            ww.ctl->launch(0, "desktop_app", {"matlab", "0", "m"});
          },
          100 * timeconst::kMillisecond, false);
      t.add_row({compress::codec_name(codec), Table::fmt(m.ckpt_seconds),
                 mb(m.compressed)});
    }
    t.print("Ablation — codec choice (MATLAB profile)");
  }

  {
    // Tiny-image processes isolate protocol + barrier costs: the paper
    // argues the centralized coordinator is not a bottleneck (§5.4).
    Table t({"procs", "ckpt_s", "non_write_s"});
    for (int nn : {4, 8, 16, 32}) {
      core::DmtcpOptions opts;
      World w(nn, opts, mix_seed(0xab4, nn), false);
      auto m = measure(
          w,
          [&](World& ww) {
            ww.ctl->launch(0, "orte_mpirun",
                           mpi::mpirun_argv(4 * nn, nn, "hello", {"h"}));
          },
          300 * timeconst::kMillisecond, false);
      const double non_write = m.ckpt_seconds - m.round.write_seconds();
      t.add_row({std::to_string(m.procs), Table::fmt(m.ckpt_seconds),
                 Table::fmt(non_write, 4)});
    }
    t.print("Ablation — coordinator/barrier cost vs process count");
  }
  return 0;
}
