// The remote chunk-store service under load: RPC-fabric lookups, sharded
// queues, replica placement, failover and background re-replication.
//
// Part A (contention sweep): N ranks on N nodes checkpoint into the
// cluster-scope store over the RPC fabric, sweeping ranks x {replicas,
// shards}. Each rank carries a private ballast (unique chunks — every
// submission is a Lookup RPC and most are Stores) plus a shared library
// ballast (dedup'd through the same path). The headline curves:
//   - per-lookup wait vs rank count at one shard — the Fig.-5b contention
//     shape moved from the SAN to the store service;
//   - the same load at --store-shards=4 — four independent queues move the
//     knee right (avg wait strictly below the one-shard point);
//   - RPC network bytes/waits per point — requests really cross the NIC.
// One extra point at max ranks runs --lookup-batch=8: K keys per RPC cut
// the RPC count ~K-fold while per-key wait absorbs the batch round-trip.
//
// Part B (failover + heal): a 4-rank world checkpoints, node 1 fails.
// With --chunk-replicas=2 the background re-replication daemon restores
// every degraded chunk to two copies before the next round completes, and
// the restart (host 1 migrated) reads only surviving replicas. With 1 the
// pre-flight reports the forced re-store (needs_restore) instead of
// restarting into missing chunks.
//
// Emits BENCH_service.json (checked by the CI bench-smoke job).
//
// Knobs: DSIM_SVC_MAX_RANKS (16), DSIM_SVC_LIB_MB (4), DSIM_SVC_PRIV_MB (1).
#include <fstream>
#include <vector>

#include "bench/bench_util.h"
#include "ckptstore/service.h"

using namespace dsim;
using namespace dsim::bench;

namespace {

/// Service nodes are dedicated (stdchk runs its storage service on its own
/// machines): worlds get `ranks + kStoreNodes` nodes, ranks compute on the
/// first `ranks`, and `--store-node ranks` pins shard endpoints onto the
/// extra ones. Co-locating an endpoint with a rank couples the metric this
/// bench sweeps to an unrelated effect — the rank's store payload burst
/// delaying service responses on the shared NIC.
constexpr int kStoreNodes = 4;

core::DmtcpOptions service_opts(int ranks, int replicas, int shards = 1,
                                int lookup_batch = 1) {
  core::DmtcpOptions opts;
  opts.incremental = true;
  opts.codec = compress::CodecKind::kNone;  // exact byte accounting
  opts.chunking = ckptstore::ChunkingMode::kCdc;
  // Fine chunks: more probes per MB, so the lookup path (the thing this
  // bench sweeps) dominates over per-image constants.
  opts.cdc_min_bytes = 4 * 1024;
  opts.cdc_avg_bytes = 16 * 1024;
  opts.cdc_max_bytes = 64 * 1024;
  opts.dedup_scope = core::DedupScope::kCluster;
  opts.chunk_replicas = replicas;
  opts.store_node = ranks;  // first dedicated store node
  opts.store_shards = shards;
  opts.lookup_batch = lookup_batch;
  return opts;
}

/// Launch `ranks` desktop processes, one per node, with a shared library
/// ballast (identical chunks everywhere) and a private per-rank ballast.
std::vector<Pid> launch_ranks(World& w, int ranks, u64 lib_bytes,
                              u64 priv_bytes) {
  const std::string prof = apps::desktop_profiles().front().name;
  std::vector<Pid> pids;
  for (int n = 0; n < ranks; ++n) {
    pids.push_back(w.ctl->launch(n, "desktop_app",
                                 {prof, "0", "p" + std::to_string(n)}));
  }
  w.ctl->run_for(50 * timeconst::kMillisecond);
  for (int n = 0; n < ranks; ++n) {
    sim::Process* p = w.k().find_process(pids[static_cast<size_t>(n)]);
    auto& lib = p->mem().add("libshared", sim::MemKind::kLib, lib_bytes);
    lib.data.fill(0, lib_bytes, sim::ExtentKind::kRand, 0x11B);
    auto& priv = p->mem().add("private", sim::MemKind::kHeap, priv_bytes);
    priv.data.fill(0, priv_bytes, sim::ExtentKind::kRand,
                   0xB0 + static_cast<u64>(n));
  }
  return pids;
}

u64 cluster_written_bytes(World& w) {
  u64 total = 0;
  for (int n = 0; n < w.k().num_nodes(); ++n) {
    total += w.k().node(n).storage().cache().total_written_bytes();
  }
  return total;
}

struct SweepPoint {
  int ranks = 0;
  int replicas = 0;
  int shards = 0;
  int lookup_batch = 1;
  u64 lookups = 0;
  u64 rpcs = 0;
  u64 rpc_net_bytes = 0;
  double rpc_net_wait_ms = 0;
  double avg_wait_ms = 0;
  double max_wait_ms = 0;
  double ckpt_seconds = 0;
  u64 stored_bytes = 0;          // new chunks + manifests (one copy)
  u64 device_written_bytes = 0;  // replica copies included
};

SweepPoint run_point(int ranks, int replicas, int shards, int lookup_batch,
                     u64 lib_bytes, u64 priv_bytes) {
  World w(ranks + kStoreNodes,
          service_opts(ranks, replicas, shards, lookup_batch),
          0x5e21 + static_cast<u64>(ranks));
  launch_ranks(w, ranks, lib_bytes, priv_bytes);
  const core::CkptRound round = w.ctl->checkpoint_now();
  SweepPoint pt;
  pt.ranks = ranks;
  pt.replicas = replicas;
  pt.shards = shards;
  pt.lookup_batch = lookup_batch;
  pt.lookups = round.store_lookups;
  pt.rpcs = round.store_rpcs;
  pt.rpc_net_bytes = round.store_rpc_net_bytes;
  pt.rpc_net_wait_ms = round.store_rpc_net_wait_seconds * 1e3;
  pt.avg_wait_ms = round.avg_lookup_wait_seconds() * 1e3;
  pt.max_wait_ms = round.max_lookup_wait_seconds * 1e3;
  pt.ckpt_seconds = round.total_seconds();
  pt.stored_bytes = round.store_new_bytes;
  pt.device_written_bytes = cluster_written_bytes(w);
  return pt;
}

struct FailoverResult {
  bool r2_restart_ok = false;
  double r2_restart_seconds = 0;
  u64 r2_rereplicated_chunks = 0;
  u64 r2_degraded_after_heal = 0;
  bool r1_needs_restore = false;
  u64 r1_lost_chunks = 0;
};

FailoverResult run_failover(u64 lib_bytes, u64 priv_bytes) {
  FailoverResult fr;
  {
    World w(4 + kStoreNodes, service_opts(4, /*replicas=*/2), 0xfa11);
    launch_ranks(w, 4, lib_bytes, priv_bytes);
    w.ctl->checkpoint_now();
    auto& svc = *w.ctl->shared().store_service;
    svc.fail_node(1);
    // Membership detects the death (~misses x interval of silence), the
    // failover manager kicks the background re-replication daemon, and the
    // heal drains while the computation keeps running; the restart then
    // reads only survivors. (bench_failover measures the mid-round kill —
    // here the heal itself is the subject.)
    w.ctl->run_for(150 * timeconst::kMillisecond);
    w.ctl->checkpoint_now();
    fr.r2_rereplicated_chunks = svc.stats().rereplicated_chunks;
    fr.r2_degraded_after_heal = svc.placement().degraded_count();
    w.ctl->kill_computation();
    const auto& rr = w.ctl->restart({{1, 2}});
    fr.r2_restart_ok = !rr.needs_restore && rr.procs == 4;
    fr.r2_restart_seconds = rr.total_seconds();
  }
  {
    World w(4 + kStoreNodes, service_opts(4, /*replicas=*/1), 0xfa11);
    launch_ranks(w, 4, lib_bytes, priv_bytes);
    w.ctl->checkpoint_now();
    w.ctl->shared().store_service->fail_node(1);
    w.ctl->kill_computation();
    const auto& rr = w.ctl->restart({{1, 2}});
    fr.r1_needs_restore = rr.needs_restore;
    fr.r1_lost_chunks = rr.lost_chunks;
  }
  return fr;
}

}  // namespace

int main() {
  const int max_ranks = env_int("DSIM_SVC_MAX_RANKS", 16);
  const u64 lib_bytes =
      static_cast<u64>(env_int("DSIM_SVC_LIB_MB", 4)) * 1024 * 1024;
  const u64 priv_bytes =
      static_cast<u64>(env_int("DSIM_SVC_PRIV_MB", 1)) * 1024 * 1024;

  std::vector<int> rank_points;
  for (int r = 2; r <= max_ranks; r *= 2) rank_points.push_back(r);
  if (rank_points.empty()) {
    // DSIM_SVC_MAX_RANKS=1: a single-point run (no growth ratio, so the
    // knee summary degenerates — useful only for eyeballing one config).
    rank_points.push_back(std::max(1, max_ranks));
  }

  // Sweep configurations: the one-queue baseline, its replicated variant
  // (device write amplification), and the four-shard variant (the knee
  // moves right).
  struct Config {
    int replicas, shards;
  };
  const std::vector<Config> configs{{1, 1}, {2, 1}, {1, 4}};

  Table t({"ranks", "replicas", "shards", "lookups", "rpcs", "avg_wait_ms",
           "max_wait_ms", "net_MB", "ckpt_s", "stored_MB", "dev_written_MB"});
  std::vector<SweepPoint> sweep;
  for (int ranks : rank_points) {
    for (const Config& c : configs) {
      const SweepPoint pt = run_point(ranks, c.replicas, c.shards, 1,
                                      lib_bytes, priv_bytes);
      sweep.push_back(pt);
      t.add_row({Table::fmt(ranks, 0), Table::fmt(c.replicas, 0),
                 Table::fmt(c.shards, 0),
                 Table::fmt(static_cast<double>(pt.lookups), 0),
                 Table::fmt(static_cast<double>(pt.rpcs), 0),
                 Table::fmt(pt.avg_wait_ms, 3), Table::fmt(pt.max_wait_ms, 3),
                 mb(pt.rpc_net_bytes), Table::fmt(pt.ckpt_seconds),
                 mb(pt.stored_bytes), mb(pt.device_written_bytes)});
    }
  }
  t.print("Chunk-store service: lookup contention vs ranks x replicas x "
          "shards");

  // Sweep summaries. Knee: per-lookup wait at max vs min ranks (replicas=1,
  // shards=1). Shard knee shift: one-shard vs four-shard wait at max ranks.
  double wait_min_ranks = 0, wait_max_ranks = 0, wait_shards4 = 0;
  u64 rpcs_batch1 = 0;
  u64 dev_r1 = 0, dev_r2 = 0;
  for (const auto& pt : sweep) {
    if (pt.replicas == 1 && pt.shards == 1) {
      if (pt.ranks == rank_points.front()) wait_min_ranks = pt.avg_wait_ms;
      if (pt.ranks == rank_points.back()) {
        wait_max_ranks = pt.avg_wait_ms;
        rpcs_batch1 = pt.rpcs;
      }
    }
    if (pt.ranks == rank_points.back()) {
      if (pt.replicas == 1 && pt.shards == 4) wait_shards4 = pt.avg_wait_ms;
      if (pt.shards == 1 && pt.replicas == 1) dev_r1 = pt.device_written_bytes;
      if (pt.shards == 1 && pt.replicas == 2) dev_r2 = pt.device_written_bytes;
    }
  }

  // The batching trade-off at the most contended point: K keys per RPC cut
  // the RPC count, per-key wait absorbs the batch round-trip.
  const SweepPoint batch = run_point(rank_points.back(), 1, 1, 8, lib_bytes,
                                     priv_bytes);
  std::printf("lookup-batch=8 at %d ranks: %llu RPCs (vs %llu at batch=1), "
              "avg wait %.3f ms\n",
              rank_points.back(),
              static_cast<unsigned long long>(batch.rpcs),
              static_cast<unsigned long long>(rpcs_batch1),
              batch.avg_wait_ms);

  const FailoverResult fr = run_failover(lib_bytes, priv_bytes);
  std::printf("failover: R=2 restart %s (%.3f s, %llu chunks re-replicated, "
              "%llu still degraded); R=1 needs_restore=%s (%llu chunks "
              "lost)\n",
              fr.r2_restart_ok ? "ok" : "FAILED", fr.r2_restart_seconds,
              static_cast<unsigned long long>(fr.r2_rereplicated_chunks),
              static_cast<unsigned long long>(fr.r2_degraded_after_heal),
              fr.r1_needs_restore ? "true" : "false",
              static_cast<unsigned long long>(fr.r1_lost_chunks));

  const double wait_growth =
      wait_min_ranks > 0 ? wait_max_ranks / wait_min_ranks : 0;
  const double shard_speedup =
      wait_shards4 > 0 ? wait_max_ranks / wait_shards4 : 0;
  const double write_amplification =
      dev_r1 > 0 ? static_cast<double>(dev_r2) / static_cast<double>(dev_r1)
                 : 0;
  const double batch_rpc_reduction =
      batch.rpcs > 0 ? static_cast<double>(rpcs_batch1) /
                           static_cast<double>(batch.rpcs)
                     : 0;

  std::ofstream json("BENCH_service.json");
  json << "{\n  \"config\": {\"max_ranks\": " << max_ranks
       << ", \"lib_bytes\": " << lib_bytes
       << ", \"priv_bytes\": " << priv_bytes << "},\n  \"sweep\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const auto& pt = sweep[i];
    json << "    {\"ranks\": " << pt.ranks
         << ", \"replicas\": " << pt.replicas << ", \"shards\": " << pt.shards
         << ", \"lookups\": " << pt.lookups << ", \"rpcs\": " << pt.rpcs
         << ", \"rpc_net_bytes\": " << pt.rpc_net_bytes
         << ", \"rpc_net_wait_ms\": " << pt.rpc_net_wait_ms
         << ", \"avg_lookup_wait_ms\": " << pt.avg_wait_ms
         << ", \"max_lookup_wait_ms\": " << pt.max_wait_ms
         << ", \"ckpt_seconds\": " << pt.ckpt_seconds
         << ", \"stored_bytes\": " << pt.stored_bytes
         << ", \"device_written_bytes\": " << pt.device_written_bytes << "}"
         << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"batch\": {\"lookup_batch\": 8, \"ranks\": "
       << rank_points.back() << ", \"rpcs\": " << batch.rpcs
       << ", \"rpcs_batch1\": " << rpcs_batch1
       << ", \"avg_lookup_wait_ms\": " << batch.avg_wait_ms
       << ", \"rpc_net_bytes\": " << batch.rpc_net_bytes
       << "},\n  \"failover\": {\"r2_restart_ok\": "
       << (fr.r2_restart_ok ? "true" : "false")
       << ", \"r2_restart_seconds\": " << fr.r2_restart_seconds
       << ", \"r2_rereplicated_chunks\": " << fr.r2_rereplicated_chunks
       << ", \"r2_degraded_after_heal\": " << fr.r2_degraded_after_heal
       << ", \"r1_needs_restore\": "
       << (fr.r1_needs_restore ? "true" : "false")
       << ", \"r1_lost_chunks\": " << fr.r1_lost_chunks
       << "},\n  \"summary\": {\"wait_ms_at_min_ranks\": " << wait_min_ranks
       << ", \"wait_ms_at_max_ranks\": " << wait_max_ranks
       << ", \"wait_ms_shards4_at_max_ranks\": " << wait_shards4
       << ", \"wait_growth\": " << wait_growth
       << ", \"shard_speedup\": " << shard_speedup
       << ", \"contention_knee_visible\": "
       << (wait_growth > 1.5 ? "true" : "false")
       << ", \"shard_knee_shifted\": "
       << (shard_speedup > 1.0 ? "true" : "false")
       << ", \"batch_rpc_reduction\": " << batch_rpc_reduction
       << ", \"replica_write_amplification\": " << write_amplification
       << ", \"r2_restart_ok\": " << (fr.r2_restart_ok ? "true" : "false")
       << ", \"r1_needs_restore\": "
       << (fr.r1_needs_restore ? "true" : "false") << "}\n}\n";

  std::printf("wrote BENCH_service.json\n");
  return 0;
}
