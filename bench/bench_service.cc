// The remote chunk-store service under load: queued dedup lookups, replica
// placement, and failover.
//
// Part A (contention sweep): N ranks on N nodes checkpoint into the
// cluster-scope store through the ChunkStoreService request queue, sweeping
// ranks x replicas. Each rank carries a private ballast (unique chunks —
// every submission is a queued Lookup and most are Stores) plus a shared
// library ballast (dedup'd through the same queue). The headline curve is
// per-lookup wait vs rank count: with one request queue serving everyone,
// the wait grows with ranks — the Fig.-5b contention shape moved from the
// SAN to the store service. Replicas multiply device writes, not queue
// traffic.
//
// Part B (failover): a 4-rank world checkpoints, node 1 fails, and the
// computation restarts with host 1 migrated. With --chunk-replicas=2 the
// restart succeeds reading only surviving replicas; with 1 the pre-flight
// reports the forced re-store (needs_restore) instead of restarting into
// missing chunks.
//
// Emits BENCH_service.json (checked by the CI bench-smoke job).
//
// Knobs: DSIM_SVC_MAX_RANKS (16), DSIM_SVC_LIB_MB (4), DSIM_SVC_PRIV_MB (1).
#include <fstream>
#include <vector>

#include "bench/bench_util.h"
#include "ckptstore/service.h"

using namespace dsim;
using namespace dsim::bench;

namespace {

core::DmtcpOptions service_opts(int replicas) {
  core::DmtcpOptions opts;
  opts.incremental = true;
  opts.codec = compress::CodecKind::kNone;  // exact byte accounting
  opts.chunking = ckptstore::ChunkingMode::kCdc;
  opts.dedup_scope = core::DedupScope::kCluster;
  opts.chunk_replicas = replicas;
  return opts;
}

/// Launch `ranks` desktop processes, one per node, with a shared library
/// ballast (identical chunks everywhere) and a private per-rank ballast.
std::vector<Pid> launch_ranks(World& w, int ranks, u64 lib_bytes,
                              u64 priv_bytes) {
  const std::string prof = apps::desktop_profiles().front().name;
  std::vector<Pid> pids;
  for (int n = 0; n < ranks; ++n) {
    pids.push_back(w.ctl->launch(n, "desktop_app",
                                 {prof, "0", "p" + std::to_string(n)}));
  }
  w.ctl->run_for(50 * timeconst::kMillisecond);
  for (int n = 0; n < ranks; ++n) {
    sim::Process* p = w.k().find_process(pids[static_cast<size_t>(n)]);
    auto& lib = p->mem().add("libshared", sim::MemKind::kLib, lib_bytes);
    lib.data.fill(0, lib_bytes, sim::ExtentKind::kRand, 0x11B);
    auto& priv = p->mem().add("private", sim::MemKind::kHeap, priv_bytes);
    priv.data.fill(0, priv_bytes, sim::ExtentKind::kRand,
                   0xB0 + static_cast<u64>(n));
  }
  return pids;
}

u64 cluster_written_bytes(World& w, int ranks) {
  u64 total = 0;
  for (int n = 0; n < ranks; ++n) {
    total += w.k().node(n).storage().cache().total_written_bytes();
  }
  return total;
}

struct SweepPoint {
  int ranks = 0;
  int replicas = 0;
  u64 lookups = 0;
  double avg_wait_ms = 0;
  double max_wait_ms = 0;
  double ckpt_seconds = 0;
  u64 stored_bytes = 0;         // new chunks + manifests (one copy)
  u64 device_written_bytes = 0; // replica copies included
};

SweepPoint run_point(int ranks, int replicas, u64 lib_bytes, u64 priv_bytes) {
  World w(ranks, service_opts(replicas), 0x5e21 + static_cast<u64>(ranks));
  launch_ranks(w, ranks, lib_bytes, priv_bytes);
  const core::CkptRound round = w.ctl->checkpoint_now();
  SweepPoint pt;
  pt.ranks = ranks;
  pt.replicas = replicas;
  pt.lookups = round.store_lookups;
  pt.avg_wait_ms = round.avg_lookup_wait_seconds() * 1e3;
  pt.max_wait_ms = round.max_lookup_wait_seconds * 1e3;
  pt.ckpt_seconds = round.total_seconds();
  pt.stored_bytes = round.store_new_bytes;
  pt.device_written_bytes = cluster_written_bytes(w, ranks);
  return pt;
}

struct FailoverResult {
  bool r2_restart_ok = false;
  double r2_restart_seconds = 0;
  bool r1_needs_restore = false;
  u64 r1_lost_chunks = 0;
};

FailoverResult run_failover(u64 lib_bytes, u64 priv_bytes) {
  FailoverResult fr;
  {
    World w(4, service_opts(/*replicas=*/2), 0xfa11);
    launch_ranks(w, 4, lib_bytes, priv_bytes);
    w.ctl->checkpoint_now();
    w.ctl->shared().store_service->fail_node(1);
    w.ctl->kill_computation();
    const auto& rr = w.ctl->restart({{1, 2}});
    fr.r2_restart_ok = !rr.needs_restore && rr.procs == 4;
    fr.r2_restart_seconds = rr.total_seconds();
  }
  {
    World w(4, service_opts(/*replicas=*/1), 0xfa11);
    launch_ranks(w, 4, lib_bytes, priv_bytes);
    w.ctl->checkpoint_now();
    w.ctl->shared().store_service->fail_node(1);
    w.ctl->kill_computation();
    const auto& rr = w.ctl->restart({{1, 2}});
    fr.r1_needs_restore = rr.needs_restore;
    fr.r1_lost_chunks = rr.lost_chunks;
  }
  return fr;
}

}  // namespace

int main() {
  const int max_ranks = env_int("DSIM_SVC_MAX_RANKS", 16);
  const u64 lib_bytes =
      static_cast<u64>(env_int("DSIM_SVC_LIB_MB", 4)) * 1024 * 1024;
  const u64 priv_bytes =
      static_cast<u64>(env_int("DSIM_SVC_PRIV_MB", 1)) * 1024 * 1024;

  std::vector<int> rank_points;
  for (int r = 2; r <= max_ranks; r *= 2) rank_points.push_back(r);
  if (rank_points.empty()) {
    // DSIM_SVC_MAX_RANKS=1: a single-point run (no growth ratio, so the
    // knee summary degenerates — useful only for eyeballing one config).
    rank_points.push_back(std::max(1, max_ranks));
  }

  Table t({"ranks", "replicas", "lookups", "avg_wait_ms", "max_wait_ms",
           "ckpt_s", "stored_MB", "dev_written_MB"});
  std::vector<SweepPoint> sweep;
  for (int ranks : rank_points) {
    for (int replicas : {1, 2}) {
      const SweepPoint pt = run_point(ranks, replicas, lib_bytes, priv_bytes);
      sweep.push_back(pt);
      t.add_row({Table::fmt(ranks, 0), Table::fmt(replicas, 0),
                 Table::fmt(static_cast<double>(pt.lookups), 0),
                 Table::fmt(pt.avg_wait_ms, 3), Table::fmt(pt.max_wait_ms, 3),
                 Table::fmt(pt.ckpt_seconds), mb(pt.stored_bytes),
                 mb(pt.device_written_bytes)});
    }
  }
  t.print("Chunk-store service: lookup contention vs ranks x replicas");

  const FailoverResult fr = run_failover(lib_bytes, priv_bytes);
  std::printf("failover: R=2 restart %s (%.3f s); R=1 needs_restore=%s "
              "(%llu chunks lost)\n",
              fr.r2_restart_ok ? "ok" : "FAILED", fr.r2_restart_seconds,
              fr.r1_needs_restore ? "true" : "false",
              static_cast<unsigned long long>(fr.r1_lost_chunks));

  // The knee: per-lookup wait at max ranks vs min ranks, replicas=1.
  double wait_min_ranks = 0, wait_max_ranks = 0;
  u64 dev_r1 = 0, dev_r2 = 0;
  for (const auto& pt : sweep) {
    if (pt.replicas != 1) continue;
    if (pt.ranks == rank_points.front()) wait_min_ranks = pt.avg_wait_ms;
    if (pt.ranks == rank_points.back()) wait_max_ranks = pt.avg_wait_ms;
  }
  for (const auto& pt : sweep) {
    if (pt.ranks != rank_points.back()) continue;
    if (pt.replicas == 1) dev_r1 = pt.device_written_bytes;
    if (pt.replicas == 2) dev_r2 = pt.device_written_bytes;
  }
  const double wait_growth =
      wait_min_ranks > 0 ? wait_max_ranks / wait_min_ranks : 0;
  const double write_amplification =
      dev_r1 > 0 ? static_cast<double>(dev_r2) / static_cast<double>(dev_r1)
                 : 0;

  std::ofstream json("BENCH_service.json");
  json << "{\n  \"config\": {\"max_ranks\": " << max_ranks
       << ", \"lib_bytes\": " << lib_bytes
       << ", \"priv_bytes\": " << priv_bytes << "},\n  \"sweep\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const auto& pt = sweep[i];
    json << "    {\"ranks\": " << pt.ranks
         << ", \"replicas\": " << pt.replicas
         << ", \"lookups\": " << pt.lookups
         << ", \"avg_lookup_wait_ms\": " << pt.avg_wait_ms
         << ", \"max_lookup_wait_ms\": " << pt.max_wait_ms
         << ", \"ckpt_seconds\": " << pt.ckpt_seconds
         << ", \"stored_bytes\": " << pt.stored_bytes
         << ", \"device_written_bytes\": " << pt.device_written_bytes << "}"
         << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"failover\": {\"r2_restart_ok\": "
       << (fr.r2_restart_ok ? "true" : "false")
       << ", \"r2_restart_seconds\": " << fr.r2_restart_seconds
       << ", \"r1_needs_restore\": "
       << (fr.r1_needs_restore ? "true" : "false")
       << ", \"r1_lost_chunks\": " << fr.r1_lost_chunks
       << "},\n  \"summary\": {\"wait_ms_at_min_ranks\": " << wait_min_ranks
       << ", \"wait_ms_at_max_ranks\": " << wait_max_ranks
       << ", \"wait_growth\": " << wait_growth
       << ", \"contention_knee_visible\": "
       << (wait_growth > 1.5 ? "true" : "false")
       << ", \"replica_write_amplification\": " << write_amplification
       << ", \"r2_restart_ok\": " << (fr.r2_restart_ok ? "true" : "false")
       << ", \"r1_needs_restore\": "
       << (fr.r1_needs_restore ? "true" : "false") << "}\n}\n";

  std::printf("wrote BENCH_service.json\n");
  return 0;
}
