// Figure 5 (§5.2): ParGeant4 under MPICH2 as node count grows — compute
// processes per node held at 4 — with checkpoints to (a) node-local disk
// and (b) centralized SAN/NFS storage (8 nodes have Fibre Channel HBAs; the
// rest reach the device via NFS). The paper's headline result: times are
// nearly flat in (a) — the coordinator's central barrier is not a
// bottleneck — while shared storage (b) serializes and grows.
#include "bench/bench_util.h"

using namespace dsim;
using namespace dsim::bench;

int main() {
  Table t({"storage", "nodes", "procs", "ckpt_s", "ckpt_sd", "restart_s",
           "restart_sd"});
  for (const bool san : {false, true}) {
    for (int nodes = 4; nodes <= env_int("DSIM_BENCH_NODES", 32);
         nodes += 4) {
      const int np = 4 * nodes;  // 16..128 compute processes
      Stats ck, rs;
      for (int rep = 0; rep < reps(); ++rep) {
        core::DmtcpOptions opts;
        if (san) opts.ckpt_dir = "/shared/ckpt";
        World w(nodes, opts, mix_seed(0xf195, rep, nodes), san);
        auto m = measure(
            w,
            [&](World& ww) {
              ww.ctl->launch(0, "mpdboot", {std::to_string(nodes)});
              ww.ctl->run_for(100 * timeconst::kMillisecond);
              ww.ctl->launch(
                  0, "mpd_mpirun",
                  mpi::mpirun_argv(np, nodes, "pargeant4",
                                   {"1000000", "40", "pg4"}));
            },
            500 * timeconst::kMillisecond, /*do_restart=*/true);
        ck.add(m.ckpt_seconds);
        rs.add(m.restart_seconds);
      }
      t.add_row({san ? "SAN/NFS" : "local", std::to_string(nodes),
                 std::to_string(np), Table::fmt(ck.mean()),
                 Table::fmt(ck.stddev()), Table::fmt(rs.mean()),
                 Table::fmt(rs.stddev())});
    }
  }
  t.print("Figure 5a/5b — ParGeant4 scalability (4 compute procs/node)");
  return 0;
}
