// Table 1 (§5.3): time per checkpoint/restart stage for NAS/MG under
// OpenMPI on 8 nodes — uncompressed, compressed, and forked-compressed.
// Stage times are the durations between the coordinator's global barriers,
// exactly the paper's methodology.
#include "bench/bench_util.h"

using namespace dsim;
using namespace dsim::bench;

namespace {

struct Run {
  core::CkptRound round;
  core::RestartRun restart;
  double background_extra = 0;  // forked mode: writer finishing after resume
};

Run run_once(compress::CodecKind codec, bool forked, u64 seed) {
  const int nodes = 8;
  const int np = 32;
  core::DmtcpOptions opts;
  opts.codec = codec;
  opts.forked_checkpointing = forked;
  World w(nodes, opts, seed, false);
  auto m = measure(
      w,
      [&](World& ww) {
        ww.ctl->launch(0, "orte_mpirun",
                       mpi::mpirun_argv(np, nodes, "nas",
                                        {"mg", "1000000", "mg8"}));
      },
      500 * timeconst::kMillisecond, /*do_restart=*/!forked);
  if (forked) {
    // Let the copy-on-write writer child finish in the background.
    w.ctl->run_for(60 * timeconst::kSecond);
    m.round = w.ctl->stats().rounds.back();
  }
  Run r;
  r.round = m.round;
  r.restart = m.restart;
  if (forked && m.round.background_done > m.round.refilled) {
    r.background_extra = to_seconds(m.round.background_done -
                                    m.round.refilled);
  }
  return r;
}

}  // namespace

int main() {
  const Run un = run_once(compress::CodecKind::kNone, false, 0x7a1);
  const Run gz = run_once(compress::CodecKind::kGzipish, false, 0x7a2);
  const Run fk = run_once(compress::CodecKind::kGzipish, true, 0x7a3);

  Table a({"checkpoint stage", "uncompressed_s", "compressed_s",
           "fork_compressed_s", "paper_uncmp", "paper_cmp", "paper_fork"});
  auto row = [&](const char* name, double u, double g, double f,
                 const char* pu, const char* pc, const char* pf) {
    a.add_row({name, Table::fmt(u, 4), Table::fmt(g, 4), Table::fmt(f, 4),
               pu, pc, pf});
  };
  row("Suspend user threads", un.round.suspend_seconds(),
      gz.round.suspend_seconds(), fk.round.suspend_seconds(), "0.0251",
      "0.0217", "0.0250");
  row("Elect FD leaders", un.round.elect_seconds(), gz.round.elect_seconds(),
      fk.round.elect_seconds(), "0.0014", "0.0013", "0.0013");
  row("Drain kernel buffers", un.round.drain_seconds(),
      gz.round.drain_seconds(), fk.round.drain_seconds(), "0.1019", "0.1020",
      "0.1017");
  row("Write checkpoint", un.round.write_seconds(), gz.round.write_seconds(),
      fk.round.write_seconds(), "0.6333", "3.9403", "0.0618");
  row("Refill kernel buffers", un.round.refill_seconds(),
      gz.round.refill_seconds(), fk.round.refill_seconds(), "0.0006",
      "0.0008", "0.0016");
  row("Total", un.round.total_seconds(), gz.round.total_seconds(),
      fk.round.total_seconds(), "0.7630", "4.0669", "0.1922");
  a.print("Table 1a — checkpoint stages, NAS/MG under OpenMPI, 8 nodes");
  std::printf("forked mode: background writer finished %.3f s after resume\n",
              fk.background_extra);

  Table b({"restart stage", "uncompressed_s", "compressed_s", "paper_uncmp",
           "paper_cmp"});
  auto hosts = [](const core::RestartRun& r) {
    return std::max(r.hosts_reported, 1);
  };
  b.add_row({"Restore files and ptys",
             Table::fmt(un.restart.files_ptys_seconds / hosts(un.restart), 4),
             Table::fmt(gz.restart.files_ptys_seconds / hosts(gz.restart), 4),
             "0.0056", "0.0088"});
  b.add_row({"Reconnect sockets",
             Table::fmt(un.restart.reconnect_seconds / hosts(un.restart), 4),
             Table::fmt(gz.restart.reconnect_seconds / hosts(gz.restart), 4),
             "0.0400", "0.0214"});
  b.add_row(
      {"Restore memory/threads",
       Table::fmt(un.restart.memory_threads_seconds / hosts(un.restart), 4),
       Table::fmt(gz.restart.memory_threads_seconds / hosts(gz.restart), 4),
       "0.8139", "2.1167"});
  b.add_row({"Refill kernel buffers",
             Table::fmt(un.restart.refill_seconds, 4),
             Table::fmt(gz.restart.refill_seconds, 4), "0.0009", "0.0018"});
  b.add_row({"Total", Table::fmt(un.restart.total_seconds(), 4),
             Table::fmt(gz.restart.total_seconds(), 4), "0.8604", "2.1487"});
  b.print("Table 1b — restart stages, NAS/MG under OpenMPI, 8 nodes");
  return 0;
}
