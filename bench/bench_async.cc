// Async COW checkpoint pipeline vs synchronous encode+store.
//
// Four measurements over the same distributed workload (one desktop app
// per rank node, pattern ballast dirtied between generations, chunks
// draining through the sharded chunk-store service):
//
//   1. App-visible pause per generation, sync vs --ckpt-async: the async
//      world pays fork/COW only, the encode+store CPU runs behind the
//      app's back (gate: >= 5x total-pause speedup).
//   2. Byte identity: generation-0 manifests are CRC-compared sync vs
//      async, and restored ballast content is CRC-compared across
//      --compress=none and --compress=lz77+huffman (gates: equal).
//   3. Failover during the background drain: a shard endpoint dies while
//      jobs are in flight; the heal-forwarding store path plus R=2 must
//      lose nothing, and the revived node gets its shard back (gate:
//      lost_chunks == 0, restart_ok).
//   4. kCompressBw sweep: background compression trades compress-stage
//      CPU for store/NIC bytes; a slow compressor loses the drain race,
//      a fast one wins it (gates: loses at 8 MB/s, wins at 480 MB/s).
//
// Emits BENCH_async.json. Knobs: DSIM_ASYNC_GENS (4),
// DSIM_ASYNC_BALLAST_MB (16), DSIM_ASYNC_DIRTY_PCT (50),
// DSIM_ASYNC_RANKS (2).
#include <fstream>
#include <vector>

#include "bench/bench_util.h"
#include "ckptasync/pipeline.h"
#include "ckptstore/service.h"
#include "util/crc32.h"
#include "util/rng.h"

using namespace dsim;
using namespace dsim::bench;

namespace {

core::DmtcpOptions async_opts(bool async, compress::CodecKind codec,
                              int ranks, int replicas = 1) {
  core::DmtcpOptions o;
  o.incremental = true;
  o.ckpt_async = async;
  o.codec = codec;
  o.chunking = ckptstore::ChunkingMode::kCdc;
  o.cdc_min_bytes = 16 * 1024;
  o.cdc_avg_bytes = 64 * 1024;
  o.cdc_max_bytes = 256 * 1024;
  o.dedup_scope = core::DedupScope::kCluster;
  o.chunk_replicas = replicas;
  o.store_shards = 2;
  o.store_node = ranks;  // first spare node
  return o;
}

sim::MemSegment* add_pattern_ballast(World& w, Pid pid, u64 bytes, u64 seed) {
  sim::Process* p = w.k().find_process(pid);
  auto& seg = p->mem().add("ballast", sim::MemKind::kHeap, bytes);
  seg.data.fill(0, bytes, sim::ExtentKind::kRand, seed);
  return &seg;
}

/// Compressible real bytes (run-length structure, seeded per rank): unlike
/// pattern extents these are host-compressed, so codec choice moves both
/// the stored bytes and the drain time.
std::vector<std::byte> runs_content(u64 bytes, u64 seed) {
  std::vector<std::byte> data(bytes);
  Rng rng(seed);
  size_t i = 0;
  while (i < bytes) {
    const auto v = static_cast<std::byte>(rng.next_below(4));
    const size_t run = 1 + rng.next_below(300);
    for (size_t j = 0; j < run && i < bytes; ++j) data[i++] = v;
  }
  return data;
}

bool drain_pipeline(World& w) {
  auto pipe = w.ctl->shared().async_pipeline;
  if (pipe == nullptr) return true;
  return w.ctl->run_until([&] { return pipe->idle(); },
                          w.k().loop().now() + 600 * timeconst::kSecond);
}

/// CRC over every manifest of the current restart plan, in plan order.
u32 manifest_crc(World& w) {
  u32 crc = 0;
  const core::RestartPlan plan = w.ctl->read_restart_plan();
  for (const auto& host : plan.hosts) {
    for (const auto& img : host.images) {
      auto inode = w.k().fs_for(host.host, img).lookup(img);
      if (inode == nullptr) return 0;
      const auto bytes = inode->data.materialize(0, inode->data.size());
      crc = crc32_update(crc, bytes);
    }
  }
  return crc;
}

/// CRCs of every live process's "ballast" segment, ascending by pid.
std::vector<u32> restored_ballast_crcs(World& w) {
  std::vector<u32> out;
  for (const Pid pid : w.k().live_pids()) {
    sim::Process* p = w.k().find_process(pid);
    if (p == nullptr) continue;
    const sim::MemSegment* seg = p->mem().find("ballast");
    if (seg == nullptr) continue;
    out.push_back(crc32(seg->data.materialize(0, seg->data.size())));
  }
  return out;
}

const char* b2s(bool b) { return b ? "true" : "false"; }

}  // namespace

int main() {
  const int gens = env_int("DSIM_ASYNC_GENS", 4);
  const u64 ballast =
      static_cast<u64>(env_int("DSIM_ASYNC_BALLAST_MB", 16)) * 1024 * 1024;
  const int dirty_pct = env_int("DSIM_ASYNC_DIRTY_PCT", 50);
  const int ranks = env_int("DSIM_ASYNC_RANKS", 2);
  const int nodes = ranks + 2;  // spares host the shard endpoints
  const u64 dirty_bytes = ballast * static_cast<u64>(dirty_pct) / 100;
  const std::string prof = apps::desktop_profiles().front().name;

  auto launch_ranks = [&](World& w) {
    std::vector<Pid> pids;
    for (int i = 0; i < ranks; ++i) {
      pids.push_back(w.ctl->launch(i, "desktop_app",
                                   {prof, "0", "r" + std::to_string(i)}));
    }
    w.ctl->run_for(50 * timeconst::kMillisecond);
    return pids;
  };

  // --- 1. pause: sync vs async over generations ----------------------------
  std::vector<double> sync_pause, async_pause;
  u32 crc_sync = 0, crc_async = 0;
  u64 queued_bytes = 0, cow_pages = 0;
  double max_drain = 0;
  for (const bool async : {false, true}) {
    World w(nodes, async_opts(async, compress::CodecKind::kGzipish, ranks),
            0xA51C);
    const auto pids = launch_ranks(w);
    std::vector<sim::MemSegment*> segs;
    for (int i = 0; i < ranks; ++i) {
      segs.push_back(add_pattern_ballast(w, pids[static_cast<size_t>(i)],
                                         ballast, 0xB0 + static_cast<u64>(i)));
    }
    for (int g = 0; g < gens; ++g) {
      if (g > 0) {
        for (int i = 0; i < ranks; ++i) {
          segs[static_cast<size_t>(i)]->data.fill(
              0, dirty_bytes, sim::ExtentKind::kRand,
              0xB0 + 16 * static_cast<u64>(g) + static_cast<u64>(i));
        }
      }
      const double pause = w.ctl->checkpoint_now().total_seconds();
      (async ? async_pause : sync_pause).push_back(pause);
      if (g == 0) (async ? crc_async : crc_sync) = manifest_crc(w);
      if (async) {
        queued_bytes += w.ctl->stats().rounds.back().async_queued_bytes;
        drain_pipeline(w);
      }
    }
    if (async) {
      const auto& ps = w.ctl->shared().async_pipeline->stats();
      cow_pages = ps.cow_pages_copied;
      max_drain = ps.max_drain_seconds;
    }
  }
  double sync_total = 0, async_total = 0;
  for (const double s : sync_pause) sync_total += s;
  for (const double s : async_pause) async_total += s;
  const double speedup = async_total > 0 ? sync_total / async_total : 0;
  const bool manifests_match = crc_sync != 0 && crc_sync == crc_async;

  // --- 2. compression bytes + restored-content identity ---------------------
  u64 raw_new = 0, compressed_new = 0;
  bool restored_match = true;
  std::vector<u32> restored_ref;
  for (const auto codec :
       {compress::CodecKind::kNone, compress::CodecKind::kGzipish}) {
    World w(nodes, async_opts(true, codec, ranks), 0xC0DE);
    const auto pids = launch_ranks(w);
    for (int i = 0; i < ranks; ++i) {
      sim::Process* p = w.k().find_process(pids[static_cast<size_t>(i)]);
      auto& seg = p->mem().add("ballast", sim::MemKind::kHeap,
                               4 * 1024 * 1024);
      seg.data.write(0, runs_content(4 * 1024 * 1024,
                                     0xC0 + static_cast<u64>(i)));
    }
    w.ctl->checkpoint_now();
    drain_pipeline(w);
    if (codec == compress::CodecKind::kGzipish) {
      const auto& ps = w.ctl->shared().async_pipeline->stats();
      raw_new = ps.raw_new_bytes;
      compressed_new = ps.compressed_new_bytes;
    }
    w.ctl->kill_computation();
    w.ctl->restart();
    const auto crcs = restored_ballast_crcs(w);
    if (restored_ref.empty()) {
      restored_ref = crcs;
    } else if (crcs != restored_ref) {
      restored_match = false;
    }
    if (crcs.size() != static_cast<size_t>(ranks)) restored_match = false;
  }
  const bool compressed_lt_raw = compressed_new > 0 && compressed_new < raw_new;
  const double compress_ratio =
      raw_new > 0
          ? static_cast<double>(compressed_new) / static_cast<double>(raw_new)
          : 0;

  // --- 3. endpoint death during the background drain ------------------------
  u64 lost_chunks = 1;
  u64 rehomed_back = 0;
  bool failover_restart_ok = false;
  {
    auto opts = async_opts(true, compress::CodecKind::kGzipish, ranks,
                           /*replicas=*/2);
    opts.compress_bw = 4 * 1000 * 1000;  // stretch the drain window
    World w(nodes, opts, 0xFA17);
    const auto pids = launch_ranks(w);
    for (int i = 0; i < ranks; ++i) {
      add_pattern_ballast(w, pids[static_cast<size_t>(i)], 4 * 1024 * 1024,
                          0xF0 + static_cast<u64>(i));
    }
    auto& svc = *w.ctl->shared().store_service;
    w.ctl->checkpoint_now();
    // Jobs are still compressing: kill shard 0's endpoint mid-drain. The
    // background store path must heal forward onto live holders.
    svc.fail_node(static_cast<NodeId>(ranks));
    drain_pipeline(w);
    w.ctl->run_for(500 * timeconst::kMillisecond);  // heal daemon settles
    lost_chunks = svc.placement().lost_chunks();
    svc.revive_node(static_cast<NodeId>(ranks));
    w.ctl->checkpoint_now();  // round boundary re-homes the shard back
    drain_pipeline(w);
    rehomed_back = svc.stats().rehomed_back_shards;
    w.ctl->kill_computation();
    const auto& rr = w.ctl->restart();
    failover_restart_ok = !rr.needs_restore && rr.procs == ranks;
  }

  // --- 4. compress-bandwidth sweep: drain race, gzip vs none ----------------
  auto measure_drain = [&](compress::CodecKind codec, double bw) {
    auto opts = async_opts(true, codec, ranks);
    opts.compress_bw = bw;
    World w(nodes, opts, 0x5EEB);
    const auto pids = launch_ranks(w);
    for (int i = 0; i < ranks; ++i) {
      sim::Process* p = w.k().find_process(pids[static_cast<size_t>(i)]);
      auto& seg = p->mem().add("ballast", sim::MemKind::kHeap,
                               4 * 1024 * 1024);
      seg.data.write(0, runs_content(4 * 1024 * 1024,
                                     0xD0 + static_cast<u64>(i)));
    }
    w.ctl->checkpoint_now();
    drain_pipeline(w);
    return w.ctl->shared().async_pipeline->stats().max_drain_seconds;
  };
  const std::vector<double> bws = {8e6, 30e6, 120e6, 480e6};
  const double none_drain = measure_drain(compress::CodecKind::kNone, 30e6);
  std::vector<double> gzip_drains;
  for (const double bw : bws) {
    gzip_drains.push_back(measure_drain(compress::CodecKind::kGzipish, bw));
  }
  const bool loses_slow = gzip_drains.front() > none_drain;
  const bool wins_fast = gzip_drains.back() < none_drain;

  // --- report ---------------------------------------------------------------
  Table t({"gen", "sync_pause_s", "async_pause_s", "speedup"});
  for (size_t g = 0; g < sync_pause.size(); ++g) {
    t.add_row({Table::fmt(static_cast<double>(g), 0),
               Table::fmt(sync_pause[g]), Table::fmt(async_pause[g]),
               Table::fmt(sync_pause[g] / async_pause[g], 1)});
  }
  t.print("Async COW pipeline vs sync encode (" + std::to_string(dirty_pct) +
          "% dirty per generation)");
  std::printf("speedup %.1fx  compress ratio %.3f  lost %llu  "
              "drain none %.3fs gzip@8MB/s %.3fs gzip@480MB/s %.3fs\n",
              speedup, compress_ratio,
              static_cast<unsigned long long>(lost_chunks), none_drain,
              gzip_drains.front(), gzip_drains.back());

  std::ofstream json("BENCH_async.json");
  json << "{\n  \"config\": {\"generations\": " << gens
       << ", \"ballast_bytes\": " << ballast
       << ", \"dirty_pct\": " << dirty_pct << ", \"ranks\": " << ranks
       << ", \"nodes\": " << nodes
       << ", \"default_compress_bw\": " << sim::params::kCompressBw
       << "},\n  \"pause\": {\"generations\": [\n";
  for (size_t g = 0; g < sync_pause.size(); ++g) {
    json << "    {\"gen\": " << g << ", \"sync_seconds\": " << sync_pause[g]
         << ", \"async_seconds\": " << async_pause[g] << "}"
         << (g + 1 < sync_pause.size() ? "," : "") << "\n";
  }
  json << "  ], \"sync_seconds\": " << sync_total
       << ", \"async_seconds\": " << async_total
       << ", \"speedup\": " << speedup
       << ", \"async_queued_bytes\": " << queued_bytes
       << ", \"cow_pages_copied\": " << cow_pages
       << ", \"max_drain_seconds\": " << max_drain
       << "},\n  \"identity\": {\"manifests_match\": " << b2s(manifests_match)
       << ", \"manifest_crc_sync\": " << crc_sync
       << ", \"manifest_crc_async\": " << crc_async
       << ", \"restored_match\": " << b2s(restored_match)
       << "},\n  \"compression\": {\"raw_new_bytes\": " << raw_new
       << ", \"compressed_new_bytes\": " << compressed_new
       << ", \"ratio\": " << compress_ratio
       << "},\n  \"failover\": {\"lost_chunks\": " << lost_chunks
       << ", \"rehomed_back_shards\": " << rehomed_back
       << ", \"restart_ok\": " << b2s(failover_restart_ok)
       << "},\n  \"sweep\": [\n";
  for (size_t i = 0; i < bws.size(); ++i) {
    json << "    {\"compress_bw\": " << bws[i]
         << ", \"gzip_drain_seconds\": " << gzip_drains[i]
         << ", \"none_drain_seconds\": " << none_drain
         << ", \"compression_wins\": " << b2s(gzip_drains[i] < none_drain)
         << "}" << (i + 1 < bws.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"summary\": {\"pause_speedup\": " << speedup
       << ", \"compressed_lt_raw\": " << b2s(compressed_lt_raw)
       << ", \"compress_ratio\": " << compress_ratio
       << ", \"lost_chunks\": " << lost_chunks
       << ", \"restart_ok\": " << b2s(failover_restart_ok)
       << ", \"manifests_match\": " << b2s(manifests_match)
       << ", \"restored_match\": " << b2s(restored_match)
       << ", \"compress_loses_at_slow_cpu\": " << b2s(loses_slow)
       << ", \"compress_wins_at_fast_cpu\": " << b2s(wins_fast) << "}\n}\n";
  std::printf("wrote BENCH_async.json\n");
  return 0;
}
