// Incremental vs full checkpointing over successive generations.
//
// Two identical single-node worlds run the same long-lived application with
// the same pseudo-random ballast; between generations the same fraction of
// the ballast is dirtied in both. The full world writes the whole gzip'd
// image every round (the paper's §5 path); the incremental world writes
// only the chunks the content-addressed store does not already hold.
// Emits BENCH_incremental.json with per-generation seconds, stored bytes
// and the store's dedup ratio.
//
// Knobs: DSIM_GENS (10), DSIM_DIRTY_PCT (10), DSIM_BALLAST_MB (32),
// DSIM_CHUNK_KB (64).
#include <fstream>

#include "bench/bench_util.h"

using namespace dsim;
using namespace dsim::bench;

int main() {
  const int gens = env_int("DSIM_GENS", 10);
  const int dirty_pct = env_int("DSIM_DIRTY_PCT", 10);
  const u64 ballast =
      static_cast<u64>(env_int("DSIM_BALLAST_MB", 32)) * 1024 * 1024;
  const u64 chunk = static_cast<u64>(env_int("DSIM_CHUNK_KB", 64)) * 1024;

  core::DmtcpOptions full_opts;  // paper default: gzip'd full image
  core::DmtcpOptions incr_opts;
  incr_opts.incremental = true;
  incr_opts.chunk_bytes = chunk;
  incr_opts.keep_generations = 2;

  World wf(1, full_opts, 0xbe7c);
  World wi(1, incr_opts, 0xbe7c);
  const std::string prof = apps::desktop_profiles().front().name;
  const Pid pf = wf.ctl->launch(0, "desktop_app", {prof, "0", "full"});
  const Pid pi = wi.ctl->launch(0, "desktop_app", {prof, "0", "incr"});
  wf.ctl->run_for(50 * timeconst::kMillisecond);
  wi.ctl->run_for(50 * timeconst::kMillisecond);

  auto add_ballast = [&](World& w, Pid pid) -> sim::MemSegment* {
    sim::Process* p = w.k().find_process(pid);
    auto& seg = p->mem().add("ballast", sim::MemKind::kHeap, ballast);
    seg.data.fill(0, ballast, sim::ExtentKind::kRand, 0xB0);
    return &seg;
  };
  sim::MemSegment* sf = add_ballast(wf, pf);
  sim::MemSegment* si = add_ballast(wi, pi);
  const u64 dirty_bytes = ballast * static_cast<u64>(dirty_pct) / 100;

  Table t({"gen", "full_s", "full_MB", "incr_s", "incr_MB", "new_chunks",
           "total_chunks", "dedup", "live_MB"});
  std::ofstream json("BENCH_incremental.json");
  json << "{\n  \"config\": {\"generations\": " << gens
       << ", \"dirty_pct\": " << dirty_pct
       << ", \"ballast_bytes\": " << ballast
       << ", \"chunk_bytes\": " << chunk << "},\n  \"generations\": [\n";

  double full_total_s = 0, incr_total_s = 0;
  u64 full_total_b = 0, incr_total_b = 0;
  for (int g = 0; g < gens; ++g) {
    if (g > 0) {
      // Same dirty pages in both worlds: fresh pseudo-random content over
      // the head of the ballast.
      sf->data.fill(0, dirty_bytes, sim::ExtentKind::kRand, 0xB0 + g);
      si->data.fill(0, dirty_bytes, sim::ExtentKind::kRand, 0xB0 + g);
    }
    const core::CkptRound rf = wf.ctl->checkpoint_now();
    const core::CkptRound ri = wi.ctl->checkpoint_now();
    const u64 full_b = rf.total_compressed;
    const u64 incr_b = ri.store_new_bytes;
    full_total_s += rf.total_seconds();
    incr_total_s += ri.total_seconds();
    full_total_b += full_b;
    incr_total_b += incr_b;

    t.add_row({Table::fmt(g, 0), Table::fmt(rf.total_seconds()), mb(full_b),
               Table::fmt(ri.total_seconds()), mb(incr_b),
               Table::fmt(static_cast<double>(ri.new_chunks), 0),
               Table::fmt(static_cast<double>(ri.total_chunks), 0),
               Table::fmt(ri.dedup_ratio, 2), mb(ri.store_live_bytes)});
    json << "    {\"gen\": " << g << ", \"full_seconds\": "
         << rf.total_seconds() << ", \"full_bytes\": " << full_b
         << ", \"incremental_seconds\": " << ri.total_seconds()
         << ", \"incremental_bytes\": " << incr_b
         << ", \"new_chunks\": " << ri.new_chunks
         << ", \"total_chunks\": " << ri.total_chunks
         << ", \"dedup_ratio\": " << ri.dedup_ratio
         << ", \"dirty_page_fraction\": " << ri.dirty_page_fraction
         << ", \"store_live_bytes\": " << ri.store_live_bytes
         << ", \"store_reclaimed_bytes\": " << ri.store_reclaimed_bytes
         << "}" << (g + 1 < gens ? "," : "") << "\n";
  }
  json << "  ],\n  \"summary\": {\"full_seconds\": " << full_total_s
       << ", \"incremental_seconds\": " << incr_total_s
       << ", \"full_bytes\": " << full_total_b
       << ", \"incremental_bytes\": " << incr_total_b
       << ", \"stored_bytes_ratio\": "
       << (full_total_b ? static_cast<double>(incr_total_b) /
                              static_cast<double>(full_total_b)
                        : 0)
       << "}\n}\n";

  t.print("Incremental vs full checkpointing (" + std::to_string(dirty_pct) +
          "% dirty per generation)");
  std::printf("wrote BENCH_incremental.json\n");
  return 0;
}
