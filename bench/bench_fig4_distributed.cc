// Figure 4 (§5.2): checkpoint times (4a), restart times (4b) and aggregate
// checkpoint sizes (4c) for the distributed application suite on 32 nodes,
// with and without compression. Error bars = one standard deviation over
// repetitions (paper: 10 runs).
//
// Scale notes: rank counts follow the paper (BT/SP need squares: 36; other
// NAS kernels and ParGeant4 use 128 ranks over 32 nodes; iPython uses one
// engine per node). DSIM_BENCH_NP=small shrinks ranks for smoke runs.
#include "bench/bench_util.h"

using namespace dsim;
using namespace dsim::bench;

namespace {

struct Config {
  std::string label;
  std::string runtime;  // "sockets", "mpd", "orte"
  std::string prog;
  std::vector<std::string> args;  // app args (before rank/np/nnodes)
  int np;
};

void launch_config(World& w, const Config& c, int nodes) {
  if (c.runtime == "sockets") {
    std::vector<std::string> argv = c.args;
    w.ctl->launch(0, c.prog, argv);
    return;
  }
  if (c.runtime == "mpd") {
    w.ctl->launch(0, "mpdboot", {std::to_string(nodes)});
    w.ctl->run_for(100 * timeconst::kMillisecond);
    w.ctl->launch(0, "mpd_mpirun",
                  mpi::mpirun_argv(c.np, nodes, c.prog, c.args));
    return;
  }
  w.ctl->launch(0, "orte_mpirun",
                mpi::mpirun_argv(c.np, nodes, c.prog, c.args));
}

}  // namespace

int main() {
  const int nodes = env_int("DSIM_BENCH_NODES", 32);
  const bool small = env_int("DSIM_BENCH_SMALL", 0) != 0;
  const int big_np = small ? 2 * nodes : 4 * nodes;  // paper: 128 over 32
  const int sq_np = small ? 16 : 36;                 // BT/SP: square counts

  const std::vector<Config> configs = {
      {"iPython/Shell[1]", "sockets", "ipython_controller",
       {std::to_string(nodes), "100000", "shell", "ipys"}, 0},
      {"iPython/Demo[1]", "sockets", "ipython_controller",
       {std::to_string(nodes), "100000", "demo", "ipyd"}, 0},
      {"Baseline[2]", "mpd", "hello", {"hello2"}, nodes},
      {"ParGeant4[2]", "mpd", "pargeant4", {"1000000", "20", "pg4"}, big_np},
      {"NAS/CG[2]", "mpd", "nas", {"cg", "1000000", "cg"}, big_np},
      {"Baseline[3]", "orte", "hello", {"hello3"}, nodes},
      {"NAS/EP[3]", "orte", "nas", {"ep", "1000000", "ep"}, big_np},
      {"NAS/LU[3]", "orte", "nas", {"lu", "1000000", "lu"}, big_np},
      {"NAS/SP[3]", "orte", "nas", {"sp", "1000000", "sp"}, sq_np},
      {"NAS/MG[3]", "orte", "nas", {"mg", "1000000", "mg"}, big_np},
      {"NAS/IS[3]", "orte", "nas", {"is", "1000000", "is"}, big_np},
      {"NAS/BT[3]", "orte", "nas", {"bt", "1000000", "bt"}, sq_np},
  };

  Table t({"config", "codec", "ckpt_s", "ckpt_sd", "restart_s", "restart_sd",
           "agg_size_MB", "procs"});
  for (const auto& c : configs) {
    for (const auto codec :
         {compress::CodecKind::kGzipish, compress::CodecKind::kNone}) {
      Stats ck, rs;
      u64 size = 0;
      int procs = 0;
      for (int rep = 0; rep < reps(); ++rep) {
        core::DmtcpOptions opts;
        opts.codec = codec;
        World w(nodes, opts, mix_seed(0xf194, rep, c.np), false);
        auto m = measure(
            w, [&](World& ww) { launch_config(ww, c, nodes); },
            600 * timeconst::kMillisecond, /*do_restart=*/true);
        ck.add(m.ckpt_seconds);
        rs.add(m.restart_seconds);
        size = codec == compress::CodecKind::kGzipish ? m.compressed
                                                      : m.uncompressed;
        procs = m.procs;
      }
      t.add_row({c.label, compress::codec_name(codec), Table::fmt(ck.mean()),
                 Table::fmt(ck.stddev()), Table::fmt(rs.mean()),
                 Table::fmt(rs.stddev()), mb(size), std::to_string(procs)});
    }
  }
  t.print("Figure 4a/4b/4c — distributed applications (" +
          std::to_string(nodes) + " nodes)");
  return 0;
}
