// Figure 6 (§5.2): checkpoint/restart time as total memory grows — a
// synthetic OpenMPI program allocating random (incompressible) data on 32
// nodes, compression disabled, checkpoints to local disk. The implied
// bandwidth sits well beyond physical disk speed: unsynced writes are
// absorbed by the page cache (§5.4).
#include "bench/bench_util.h"

using namespace dsim;
using namespace dsim::bench;

int main() {
  const int nodes = env_int("DSIM_BENCH_NODES", 32);
  Table t({"total_GB", "ckpt_s", "restart_s", "implied_MB_per_s_per_node"});
  for (const double total_gb : {4.0, 8.0, 16.0, 24.0, 32.0, 48.0, 64.0}) {
    const int mb_per_rank = static_cast<int>(total_gb * 1024.0 / nodes);
    core::DmtcpOptions opts;
    opts.codec = compress::CodecKind::kNone;
    World w(nodes, opts, mix_seed(0xf196, static_cast<u64>(total_gb)), false);
    auto m = measure(
        w,
        [&](World& ww) {
          ww.ctl->launch(0, "orte_mpirun",
                         mpi::mpirun_argv(nodes, nodes, "memhog",
                                          {std::to_string(mb_per_rank),
                                           "hog"}));
        },
        400 * timeconst::kMillisecond, /*do_restart=*/true);
    const double per_node_mb =
        total_gb * 1024.0 / nodes / std::max(m.ckpt_seconds, 1e-9);
    t.add_row({Table::fmt(total_gb, 0), Table::fmt(m.ckpt_seconds),
               Table::fmt(m.restart_seconds), Table::fmt(per_node_mb, 0)});
  }
  t.print("Figure 6 — time vs memory (32 nodes, compression off)");
  return 0;
}
