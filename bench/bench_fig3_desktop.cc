// Figure 3 (§5.1): checkpoint/restart times (3a) and compressed checkpoint
// sizes (3b) for 21 common shell-like applications on a single node
// (dual-socket quad-core, 8 cores), gzip compression enabled.
#include "bench/bench_util.h"

using namespace dsim;
using namespace dsim::bench;

int main() {
  Table t({"app", "ckpt_s", "ckpt_sd", "restart_s", "restart_sd", "size_MB",
           "uncompressed_MB"});
  for (const auto& prof : apps::desktop_profiles()) {
    if (prof.name == "runcms") continue;  // reported by bench_runcms
    Stats ck, rs;
    u64 size = 0, unsize = 0;
    for (int rep = 0; rep < reps(); ++rep) {
      World w(1, {}, mix_seed(0xf193, rep), /*san=*/false, /*cores=*/8);
      auto m = measure(
          w,
          [&](World& ww) {
            ww.ctl->launch(0, "desktop_app", {prof.name, "0", prof.name});
          },
          100 * timeconst::kMillisecond, /*do_restart=*/true);
      ck.add(m.ckpt_seconds);
      rs.add(m.restart_seconds);
      size = m.compressed;
      unsize = m.uncompressed;
    }
    t.add_row({prof.name, Table::fmt(ck.mean()), Table::fmt(ck.stddev()),
               Table::fmt(rs.mean()), Table::fmt(rs.stddev()), mb(size),
               mb(unsize)});
  }
  t.print("Figure 3a/3b — desktop applications (1 node, gzip on)");
  return 0;
}
