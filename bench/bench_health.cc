// Round-health bench: the SLO/alert layer and critical-path attribution
// under a healthy sweep and under a mid-round endpoint kill.
//
// Part A (healthy sweep): N incremental rounds over an R=2 sharded store
// with the health engine armed (--health-out + --slo). Nothing fails, so
// the deterministic gate is exact: zero alerts fired, zero active, and
// every round's critical-path report partitions its window to the
// nanosecond (critpath_sum_matches). The top-ranked blame fraction of the
// final round is exported as a stability metric the baseline diff gates.
//
// Part B (overhead): the same healthy world runs twice — health layer off,
// then on. Sampling the registry and evaluating rules at round boundaries
// posts no events and charges no simulated time, so both runs reach the
// measurement point at the same virtual instant: trace_overhead_ratio is
// 1.0 by construction, gated at <= 1.02.
//
// Part C (kill): the bench_failover scenario with rules armed — the first
// shard endpoint dies right after the drain barrier. The heal backlog
// goes nonzero at the round's close, so the drain rule fires exactly
// {heal_backlog} (parked_requests is back to zero by refill — replay
// completed inside the round — so that rule stays quiet), and the alert
// clears within the gated window once the re-replication daemon drains
// the backlog. A restart closes the loop with zero lost chunks.
//
// Emits BENCH_health.json plus the health/trace artifact pairs
// BENCH_health_doc.json + BENCH_health_trace.json (healthy sweep) and
// BENCH_health_kill_doc.json + BENCH_health_kill_trace.json (kill run),
// cross-checked by tools/trace_report.py --critical-path in CI.
//
// Knobs: DSIM_HEALTH_RANKS (4), DSIM_HEALTH_LIB_MB (2),
// DSIM_HEALTH_PRIV_MB (1), DSIM_HEALTH_ROUNDS (4).
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "ckptstore/service.h"
#include "obs/slo.h"
#include "obs/timeseries.h"

using namespace dsim;
using namespace dsim::bench;

namespace {

constexpr int kStoreNodes = 2;
constexpr int kShards = 2;

// Generous bounds a healthy smoke run can never trip; the drain rule is
// the one the kill run is designed to fire.
constexpr const char* kRules =
    "pause: pause_seconds <= 120; "
    "parked: parked_requests == 0; "
    "heal_backlog: drain(degraded_chunks, 0); "
    "pause_burn: burn(pause_seconds > 120, 8) <= 0.25";

core::DmtcpOptions health_opts(int ranks, bool armed, const char* tag) {
  core::DmtcpOptions opts;
  opts.incremental = true;
  opts.codec = compress::CodecKind::kNone;
  opts.chunking = ckptstore::ChunkingMode::kCdc;
  opts.cdc_min_bytes = 4 * 1024;
  opts.cdc_avg_bytes = 16 * 1024;
  opts.cdc_max_bytes = 64 * 1024;
  opts.dedup_scope = core::DedupScope::kCluster;
  opts.chunk_replicas = 2;
  opts.store_node = ranks;
  opts.store_shards = kShards;
  if (armed) {
    opts.health_out = std::string("BENCH_health_") + tag + "_doc.json";
    opts.trace_out = std::string("BENCH_health_") + tag + "_trace.json";
    opts.slo = kRules;
  }
  return opts;
}

std::vector<Pid> launch_ranks(World& w, int ranks, u64 lib_bytes,
                              u64 priv_bytes) {
  const std::string prof = apps::desktop_profiles().front().name;
  std::vector<Pid> pids;
  for (int n = 0; n < ranks; ++n) {
    pids.push_back(w.ctl->launch(n, "desktop_app",
                                 {prof, "0", "p" + std::to_string(n)}));
  }
  w.ctl->run_for(50 * timeconst::kMillisecond);
  for (int n = 0; n < ranks; ++n) {
    sim::Process* p = w.k().find_process(pids[static_cast<size_t>(n)]);
    auto& lib = p->mem().add("libshared", sim::MemKind::kLib, lib_bytes);
    lib.data.fill(0, lib_bytes, sim::ExtentKind::kRand, 0x11B);
    auto& priv = p->mem().add("private", sim::MemKind::kHeap, priv_bytes);
    priv.data.fill(0, priv_bytes, sim::ExtentKind::kRand,
                   0xB0 + static_cast<u64>(n));
  }
  return pids;
}

void touch_ranks(World& w, const std::vector<Pid>& pids, u64 priv_bytes,
                 u64 salt) {
  for (size_t n = 0; n < pids.size(); ++n) {
    sim::Process* p = w.k().find_process(pids[n]);
    auto* seg = p->mem().find("private");
    seg->data.fill(0, priv_bytes, sim::ExtentKind::kRand,
                   salt + static_cast<u64>(n));
  }
}

struct HealthyRun {
  double sim_seconds = 0;  // virtual clock at the fixed measurement point
  int rounds = 0;
  u64 alerts_fired = 0;
  size_t active_alerts = 0;
  size_t series_rounds = 0;
  int critpath_rounds_checked = 0;
  bool critpath_sum_matches = true;
  std::string top_stage;
  double top_fraction = 0;
};

/// N clean incremental rounds; with `armed` the health layer samples every
/// boundary and flushes the doc + trace artifacts at the end.
HealthyRun run_healthy(bool armed, int ranks, int rounds, u64 lib_bytes,
                       u64 priv_bytes) {
  HealthyRun res;
  World w(ranks + kStoreNodes, health_opts(ranks, armed, "healthy"), 0x6EA1);
  const std::vector<Pid> pids = launch_ranks(w, ranks, lib_bytes, priv_bytes);
  for (int r = 0; r < rounds; ++r) {
    w.ctl->checkpoint_now();
    touch_ranks(w, pids, priv_bytes, 0x500 + static_cast<u64>(r) * 0x10);
  }
  res.rounds = rounds;

  // Quiesce so every span closes, then read the fixed measurement point —
  // identical for the armed and unarmed runs iff the health layer charged
  // no simulated time.
  w.ctl->shared().membership->stop();
  w.ctl->run_for(200 * timeconst::kMillisecond);
  res.sim_seconds = to_seconds(w.k().loop().now());

  if (armed) {
    // Without the tracer there is no span timeline to sweep; rounds carry
    // empty reports in the unarmed run, so the exactness check is
    // armed-only.
    for (const core::CkptRound& r : w.ctl->stats().rounds) {
      if (r.refilled == 0) continue;
      res.critpath_rounds_checked++;
      if (r.critical_path.attributed_ns() != r.refilled - r.requested) {
        res.critpath_sum_matches = false;
      }
    }
    const core::CkptRound& last = w.ctl->stats().rounds.back();
    if (!last.critical_path.entries.empty()) {
      res.top_stage = last.critical_path.entries.front().stage;
      res.top_fraction = last.critical_path.fraction(0);
    }
    const auto& sh = w.ctl->shared();
    res.alerts_fired = sh.slo_engine->alerts_fired();
    res.active_alerts = sh.slo_engine->active().size();
    res.series_rounds = sh.health_series->size();
    w.ctl->flush_observability();
  }
  return res;
}

struct KillRun {
  std::vector<std::string> fired;  // rule names, fire order
  i64 fired_round = -1;
  i64 cleared_round = -1;
  int clear_rounds = 0;  // extra rounds until the alert set drained
  bool cleared = true;
  u64 lost_chunks = 0;
  bool restart_ok = false;
  std::string kill_top_stage;
  double kill_top_fraction = 0;
};

/// bench_failover's mid-round endpoint kill with the rules armed: the
/// heal-backlog drain rule must fire at the kill round's close and clear
/// once re-replication drains.
KillRun run_kill(int ranks, u64 lib_bytes, u64 priv_bytes) {
  KillRun res;
  World w(ranks + kStoreNodes, health_opts(ranks, /*armed=*/true, "kill"),
          0xFA11);
  launch_ranks(w, ranks, lib_bytes, priv_bytes);
  w.ctl->checkpoint_now();
  w.ctl->checkpoint_now();

  auto& svc = *w.ctl->shared().store_service;
  const NodeId victim = svc.endpoints().front();
  const size_t round_idx = w.ctl->stats().rounds.size();
  w.ctl->request_checkpoint();
  w.ctl->run_until(
      [&] {
        return w.ctl->stats().rounds.size() > round_idx &&
               w.ctl->stats().rounds[round_idx].drained != 0;
      },
      w.k().loop().now() + 120 * timeconst::kSecond);
  svc.fail_node(victim);
  w.ctl->run_until(
      [&] { return w.ctl->stats().rounds[round_idx].refilled != 0; },
      w.k().loop().now() + 120 * timeconst::kSecond);

  auto* engine = w.ctl->shared().slo_engine.get();
  for (const obs::AlertEvent& ev : engine->events()) {
    if (ev.fired) {
      res.fired.push_back(ev.rule);
      if (res.fired_round < 0) res.fired_round = ev.round;
    }
  }
  const core::CkptRound& kill_round = w.ctl->stats().rounds[round_idx];
  if (!kill_round.critical_path.entries.empty()) {
    res.kill_top_stage = kill_round.critical_path.entries.front().stage;
    res.kill_top_fraction = kill_round.critical_path.fraction(0);
  }

  // Clears only happen at round boundaries (the engine samples there), so
  // drive extra rounds until the active set drains.
  while (!engine->active().empty() && res.clear_rounds < 5) {
    w.ctl->run_for(250 * timeconst::kMillisecond);
    w.ctl->checkpoint_now();
    res.clear_rounds++;
  }
  res.cleared = engine->active().empty();
  for (const obs::AlertEvent& ev : engine->events()) {
    if (!ev.fired) res.cleared_round = ev.round;
  }
  res.lost_chunks = svc.placement().lost_chunks();

  w.ctl->kill_computation();
  const auto& rr = w.ctl->restart();
  res.restart_ok = !rr.needs_restore && rr.procs == ranks;
  w.ctl->shared().membership->stop();
  w.ctl->run_for(200 * timeconst::kMillisecond);
  w.ctl->flush_observability();
  return res;
}

std::string json_list(const std::vector<std::string>& v) {
  std::string out = "[";
  for (size_t i = 0; i < v.size(); ++i) {
    out += (i ? ", \"" : "\"") + v[i] + "\"";
  }
  return out + "]";
}

}  // namespace

int main() {
  const int ranks = env_int("DSIM_HEALTH_RANKS", 4);
  const int rounds = env_int("DSIM_HEALTH_ROUNDS", 4);
  const u64 lib_bytes =
      static_cast<u64>(env_int("DSIM_HEALTH_LIB_MB", 2)) * 1024 * 1024;
  const u64 priv_bytes =
      static_cast<u64>(env_int("DSIM_HEALTH_PRIV_MB", 1)) * 1024 * 1024;

  const HealthyRun off =
      run_healthy(/*armed=*/false, ranks, rounds, lib_bytes, priv_bytes);
  const HealthyRun on =
      run_healthy(/*armed=*/true, ranks, rounds, lib_bytes, priv_bytes);
  const double overhead_ratio =
      off.sim_seconds > 0 ? on.sim_seconds / off.sim_seconds : 0;

  std::printf(
      "healthy: %d rounds, %llu alerts fired, %zu active, series %zu "
      "rounds, critpath %d/%d exact, top blame %s = %.1f%%\n",
      on.rounds, static_cast<unsigned long long>(on.alerts_fired),
      on.active_alerts, on.series_rounds,
      on.critpath_sum_matches ? on.critpath_rounds_checked : 0,
      on.critpath_rounds_checked, on.top_stage.c_str(),
      on.top_fraction * 100.0);
  std::printf("overhead: off %.6f s, on %.6f s, ratio %.6f\n",
              off.sim_seconds, on.sim_seconds, overhead_ratio);

  const KillRun kill = run_kill(ranks, lib_bytes, priv_bytes);
  const bool kill_alert_set_ok =
      std::set<std::string>(kill.fired.begin(), kill.fired.end()) ==
      std::set<std::string>{"heal_backlog"};
  std::printf(
      "kill: fired %s at round %lld, cleared %s after %d round(s), "
      "%llu lost, restart %s, kill-round top blame %s = %.1f%%\n",
      json_list(kill.fired).c_str(),
      static_cast<long long>(kill.fired_round),
      kill.cleared ? "yes" : "NO", kill.clear_rounds,
      static_cast<unsigned long long>(kill.lost_chunks),
      kill.restart_ok ? "ok" : "FAILED", kill.kill_top_stage.c_str(),
      kill.kill_top_fraction * 100.0);

  const bool sum_matches = on.critpath_sum_matches && off.critpath_sum_matches;
  std::ofstream json("BENCH_health.json");
  json << "{\n  \"config\": {\"ranks\": " << ranks
       << ", \"rounds\": " << rounds << ", \"lib_bytes\": " << lib_bytes
       << ", \"priv_bytes\": " << priv_bytes
       << ", \"store_nodes\": " << kStoreNodes
       << ", \"shards\": " << kShards << "},\n"
       << "  \"healthy\": {\"rounds\": " << on.rounds
       << ", \"alerts_fired\": " << on.alerts_fired
       << ", \"active_alerts\": " << on.active_alerts
       << ", \"series_rounds\": " << on.series_rounds
       << ", \"critpath_rounds_checked\": " << on.critpath_rounds_checked
       << ", \"critpath_sum_matches\": "
       << (sum_matches ? "true" : "false")
       << ", \"top_stage\": \"" << on.top_stage << "\""
       << ", \"top_fraction\": " << on.top_fraction << "},\n"
       << "  \"overhead\": {\"health_off_sim_seconds\": " << off.sim_seconds
       << ", \"health_on_sim_seconds\": " << on.sim_seconds
       << ", \"trace_overhead_ratio\": " << overhead_ratio << "},\n"
       << "  \"kill\": {\"alerts\": " << json_list(kill.fired)
       << ", \"fired_round\": " << kill.fired_round
       << ", \"cleared_round\": " << kill.cleared_round
       << ", \"clear_rounds\": " << kill.clear_rounds
       << ", \"cleared\": " << (kill.cleared ? "true" : "false")
       << ", \"alert_set_ok\": " << (kill_alert_set_ok ? "true" : "false")
       << ", \"kill_top_stage\": \"" << kill.kill_top_stage << "\""
       << ", \"kill_top_fraction\": " << kill.kill_top_fraction
       << ", \"lost_chunks\": " << kill.lost_chunks
       << ", \"restart_ok\": " << (kill.restart_ok ? "true" : "false")
       << "},\n"
       << "  \"summary\": {\"healthy_alerts\": " << on.alerts_fired
       << ", \"kill_alert_set_ok\": "
       << (kill_alert_set_ok ? "true" : "false")
       << ", \"clear_rounds\": " << kill.clear_rounds
       << ", \"trace_overhead_ratio\": " << overhead_ratio
       << ", \"critpath_top_fraction\": " << on.top_fraction
       << ", \"critpath_sum_matches\": "
       << (sum_matches ? "true" : "false") << "}\n}\n";

  std::printf(
      "wrote BENCH_health.json, BENCH_health_healthy_doc.json, "
      "BENCH_health_healthy_trace.json, BENCH_health_kill_doc.json, "
      "BENCH_health_kill_trace.json\n");
  return (kill_alert_set_ok && kill.cleared && sum_matches) ? 0 : 1;
}
