// Content-defined chunking vs fixed chunking, and cluster-wide dedup.
//
// Part A (insertion): one process image of real content is checkpointed,
// then K bytes are inserted near the front — shifting every downstream
// byte — and it is checkpointed again into the same store. Fixed-size
// chunking re-keys every chunk after the insertion (dedup retained ~0);
// CDC cutpoints resynchronize at the next content-defined boundary, so
// dedup retention stays near 1.
//
// Part B (cluster round): N processes on N nodes each map an identical
// shared-library ballast plus a private heap. With node-scope dedup every
// node stores its own library copy; with --dedup-scope cluster the
// computation-wide store keeps exactly one, and the round's stored bytes
// drop by (N-1) library copies.
//
// Emits BENCH_cdc.json (checked by the CI bench-smoke job).
//
// Knobs: DSIM_CDC_IMG_KB (2048), DSIM_CDC_INSERT_BYTES (64),
// DSIM_CDC_AVG_KB (8), DSIM_CDC_PROCS (4), DSIM_CDC_LIB_MB (8),
// DSIM_CDC_PRIV_MB (2).
#include <fstream>
#include <span>

#include "bench/bench_util.h"
#include "ckptstore/cdc.h"
#include "mtcp/mtcp.h"
#include "tests/testutil.h"

using namespace dsim;
using namespace dsim::bench;
using dsim::test::pseudo_bytes;

namespace {

mtcp::ProcessImage image_of(std::span<const std::byte> content) {
  mtcp::ProcessImage img;
  img.prog_name = "prog";
  img.virt_pid = 7;
  img.virt_ppid = 1;
  img.origin_node = 0;
  mtcp::SegmentImage s;
  s.name = "heap";
  s.kind = sim::MemKind::kHeap;
  s.data = sim::ByteImage(content.size());
  s.data.write(0, content);
  img.segments.push_back(std::move(s));
  mtcp::ThreadImage t;
  t.kind = sim::ThreadKind::kMain;
  img.threads.push_back(t);
  return img;
}

struct InsertionResult {
  u64 total_chunks = 0;
  u64 new_chunks = 0;
  u64 new_bytes = 0;
  double dedup_retained = 0;  // dedup'd logical bytes / image bytes
};

/// Generation 0 of `before`, then generation 1 of `after` (the insertion),
/// against one repository. Codec kNone keeps charged bytes == logical
/// bytes so retention is exact.
InsertionResult run_insertion(const mtcp::ProcessImage& before,
                              const mtcp::ProcessImage& after,
                              const ckptstore::ChunkingParams& p) {
  ckptstore::Repository repo;
  const auto codec = compress::CodecKind::kNone;
  mtcp::encode_incremental(before, codec, p, "7", 0, repo);
  const auto delta = mtcp::encode_incremental(after, codec, p, "7", 1, repo);
  InsertionResult r;
  r.total_chunks = delta.total_chunks;
  r.new_chunks = delta.new_chunks;
  r.new_bytes = delta.new_chunk_bytes;
  const u64 image_bytes = after.segments[0].data.size();
  r.dedup_retained =
      static_cast<double>(delta.dup_chunk_bytes) /
      static_cast<double>(image_bytes);
  return r;
}

/// One cluster round: `procs` processes on `procs` nodes, identical
/// shared-library ballast plus private heaps, under the given dedup scope.
core::CkptRound run_cluster_round(int procs, u64 lib_bytes, u64 priv_bytes,
                                  core::DedupScope scope) {
  core::DmtcpOptions opts;
  opts.incremental = true;
  opts.codec = compress::CodecKind::kNone;  // exact byte accounting
  opts.chunking = ckptstore::ChunkingMode::kCdc;
  opts.dedup_scope = scope;
  World w(procs, opts, 0xcdc5);
  const std::string prof = apps::desktop_profiles().front().name;
  std::vector<Pid> pids;
  for (int n = 0; n < procs; ++n) {
    pids.push_back(w.ctl->launch(n, "desktop_app",
                                 {prof, "0", "p" + std::to_string(n)}));
  }
  w.ctl->run_for(50 * timeconst::kMillisecond);
  for (int n = 0; n < procs; ++n) {
    sim::Process* p = w.k().find_process(pids[static_cast<size_t>(n)]);
    // Same seed at the same offsets: every process's library chunks key
    // identically, as the same mapped .so does across a real cluster.
    auto& lib = p->mem().add("libshared", sim::MemKind::kLib, lib_bytes);
    lib.data.fill(0, lib_bytes, sim::ExtentKind::kRand, 0x11B);
    auto& priv = p->mem().add("private", sim::MemKind::kHeap, priv_bytes);
    priv.data.fill(0, priv_bytes, sim::ExtentKind::kRand,
                   0xB0 + static_cast<u64>(n));
  }
  return w.ctl->checkpoint_now();
}

}  // namespace

int main() {
  const u64 img_bytes =
      static_cast<u64>(env_int("DSIM_CDC_IMG_KB", 2048)) * 1024;
  const u64 insert_bytes =
      static_cast<u64>(env_int("DSIM_CDC_INSERT_BYTES", 64));
  const u64 avg = static_cast<u64>(env_int("DSIM_CDC_AVG_KB", 8)) * 1024;
  const int procs = env_int("DSIM_CDC_PROCS", 4);
  const u64 lib_bytes =
      static_cast<u64>(env_int("DSIM_CDC_LIB_MB", 8)) * 1024 * 1024;
  const u64 priv_bytes =
      static_cast<u64>(env_int("DSIM_CDC_PRIV_MB", 2)) * 1024 * 1024;

  // --- Part A: mid-image insertion, fixed vs CDC ----------------------------
  const u64 insert_at = 1000;  // near the front: worst case for fixed
  const auto content = pseudo_bytes(img_bytes, 42);
  const auto wedge = pseudo_bytes(insert_bytes, 0xF00D);
  std::vector<std::byte> shifted;
  shifted.reserve(content.size() + wedge.size());
  shifted.insert(shifted.end(), content.begin(),
                 content.begin() + static_cast<ptrdiff_t>(insert_at));
  shifted.insert(shifted.end(), wedge.begin(), wedge.end());
  shifted.insert(shifted.end(),
                 content.begin() + static_cast<ptrdiff_t>(insert_at),
                 content.end());
  const auto before = image_of(content);
  const auto after = image_of(shifted);

  ckptstore::ChunkingParams fixed;
  fixed.mode = ckptstore::ChunkingMode::kFixed;
  fixed.fixed_bytes = avg;
  ckptstore::ChunkingParams cdc;
  cdc.mode = ckptstore::ChunkingMode::kCdc;
  cdc.min_bytes = avg / 4;
  cdc.avg_bytes = avg;
  cdc.max_bytes = avg * 4;

  const InsertionResult rf = run_insertion(before, after, fixed);
  const InsertionResult rc = run_insertion(before, after, cdc);

  Table ta({"chunking", "total_chunks", "new_chunks", "new_MB",
            "dedup_retained"});
  ta.add_row({"fixed", Table::fmt(static_cast<double>(rf.total_chunks), 0),
              Table::fmt(static_cast<double>(rf.new_chunks), 0),
              mb(rf.new_bytes), Table::fmt(rf.dedup_retained, 3)});
  ta.add_row({"cdc", Table::fmt(static_cast<double>(rc.total_chunks), 0),
              Table::fmt(static_cast<double>(rc.new_chunks), 0),
              mb(rc.new_bytes), Table::fmt(rc.dedup_retained, 3)});
  ta.print("Dedup retained after a " + std::to_string(insert_bytes) +
           "-byte insertion at offset " + std::to_string(insert_at));

  // --- Part B: cluster round, node vs cluster dedup scope -------------------
  const auto node_round =
      run_cluster_round(procs, lib_bytes, priv_bytes, core::DedupScope::kNode);
  const auto cluster_round = run_cluster_round(procs, lib_bytes, priv_bytes,
                                               core::DedupScope::kCluster);
  const double stored_ratio =
      node_round.store_new_bytes == 0
          ? 1.0
          : static_cast<double>(cluster_round.store_new_bytes) /
                static_cast<double>(node_round.store_new_bytes);
  // Shared chunks stored exactly once <=> the cluster round saved the
  // (N-1) redundant library copies the node-scope round wrote.
  const u64 saved = node_round.store_new_bytes > cluster_round.store_new_bytes
                        ? node_round.store_new_bytes -
                              cluster_round.store_new_bytes
                        : 0;
  const u64 redundant_lib =
      static_cast<u64>(procs - 1) * lib_bytes;
  const bool shared_stored_once = saved >= redundant_lib * 9 / 10;

  Table tb({"scope", "stored_MB", "dup_MB", "shared_chunks"});
  tb.add_row({"node", mb(node_round.store_new_bytes),
              mb(node_round.store_dup_bytes),
              Table::fmt(static_cast<double>(node_round.store_shared_chunks),
                         0)});
  tb.add_row({"cluster", mb(cluster_round.store_new_bytes),
              mb(cluster_round.store_dup_bytes),
              Table::fmt(
                  static_cast<double>(cluster_round.store_shared_chunks), 0)});
  tb.print("Cluster round, " + std::to_string(procs) +
           " processes sharing a " + mb(lib_bytes) + " MB library");

  // --- JSON -----------------------------------------------------------------
  std::ofstream json("BENCH_cdc.json");
  json << "{\n  \"config\": {\"image_bytes\": " << img_bytes
       << ", \"insert_at\": " << insert_at
       << ", \"insert_bytes\": " << insert_bytes
       << ", \"avg_chunk_bytes\": " << avg << ", \"procs\": " << procs
       << ", \"lib_bytes\": " << lib_bytes
       << ", \"priv_bytes\": " << priv_bytes << "},\n";
  auto emit_insertion = [&](const char* name, const InsertionResult& r,
                            bool last) {
    json << "    \"" << name << "\": {\"total_chunks\": " << r.total_chunks
         << ", \"new_chunks\": " << r.new_chunks
         << ", \"new_bytes\": " << r.new_bytes
         << ", \"dedup_retained\": " << r.dedup_retained << "}"
         << (last ? "\n" : ",\n");
  };
  json << "  \"insertion\": {\n";
  emit_insertion("fixed", rf, false);
  emit_insertion("cdc", rc, true);
  json << "  },\n  \"cluster\": {\"procs\": " << procs
       << ", \"lib_bytes\": " << lib_bytes
       << ", \"node_scope_stored_bytes\": " << node_round.store_new_bytes
       << ", \"cluster_scope_stored_bytes\": "
       << cluster_round.store_new_bytes
       << ", \"cluster_dup_bytes\": " << cluster_round.store_dup_bytes
       << ", \"cluster_shared_chunks\": "
       << cluster_round.store_shared_chunks
       << ", \"stored_ratio\": " << stored_ratio
       << ", \"shared_stored_once\": "
       << (shared_stored_once ? "true" : "false")
       << "},\n  \"summary\": {\"fixed_dedup_retained\": "
       << rf.dedup_retained
       << ", \"cdc_dedup_retained\": " << rc.dedup_retained
       << ", \"cluster_stored_ratio\": " << stored_ratio
       << ", \"shared_stored_once\": "
       << (shared_stored_once ? "true" : "false") << "}\n}\n";

  std::printf("wrote BENCH_cdc.json\n");
  return 0;
}
