// "Save/restore workspace" (§1 use case 1) with the dmtcpaware programming
// interface (§3.1): an interactive application that knows it runs under
// DMTCP, requests its own checkpoints at meaningful moments, guards a
// critical section against checkpointing, and re-installs hooks on restart.
#include <cstdio>

#include "apps/app_util.h"
#include "core/dmtcpaware.h"
#include "core/launch.h"
#include "sim/cluster.h"

using namespace dsim;
using apps::StateView;

namespace {

struct WorkspaceState {
  u64 edits = 0;
  u64 saves = 0;
};

sim::Task<int> workspace_main(sim::ProcessCtx& ctx) {
  if (!ctx.seg("heap")) {
    auto& heap = ctx.alloc("heap", sim::MemKind::kHeap, 24ull << 20);
    heap.data.fill(12ull << 20, 12ull << 20, sim::ExtentKind::kRand, 0x90);
  }
  StateView<WorkspaceState> st(ctx);
  WorkspaceState s = st.get();

  if (core::dmtcp_is_enabled(ctx)) {
    core::dmtcp_install_hooks(
        ctx, [] { std::printf("  [app] pre-checkpoint hook\n"); },
        [] { std::printf("  [app] post-checkpoint hook (resumed)\n"); },
        [] { std::printf("  [app] post-restart hook (workspace back!)\n"); });
  }

  while (s.edits < 60) {
    {
      // A critical section no checkpoint may interrupt (§3.1).
      core::DmtcpDelayGuard guard(ctx);
      co_await ctx.cpu(200e-6);
      s.edits++;
      st.set(s);
    }
    if (s.edits % 20 == 0 && ctx.phase() == 0) {
      // "Save workspace" == ask DMTCP for a checkpoint.
      std::printf("  [app] saving workspace at edit %llu\n",
                  static_cast<unsigned long long>(s.edits));
      co_await core::dmtcp_request_checkpoint(ctx);
      s.saves++;
      st.set(s);
      const auto status = core::dmtcp_status(ctx);
      std::printf("  [app] generation now %d (vpid %d)\n",
                  status.checkpoint_generation, status.virtual_pid);
    }
    co_await ctx.sleep(2 * timeconst::kMillisecond);
  }
  co_await apps::write_result(ctx, "workspace", "workspace complete");
  co_return 0;
}

}  // namespace

int main() {
  sim::Cluster cluster(sim::Cluster::single_node());
  core::DmtcpControl dmtcp(cluster.kernel(), core::DmtcpOptions{});
  sim::Program p;
  p.name = "workspace_app";
  p.main = workspace_main;
  cluster.kernel().programs().add(std::move(p));

  dmtcp.launch(0, "workspace_app");
  // The app checkpoints itself; we crash it once and restore the workspace.
  dmtcp.run_until([&] { return dmtcp.stats().rounds.size() >= 2; },
                  cluster.kernel().loop().now() + 60 * timeconst::kSecond);
  std::printf("simulating a desktop crash after %zu workspace saves\n",
              dmtcp.stats().rounds.size());
  dmtcp.kill_computation();
  const auto& rr = dmtcp.restart();
  std::printf("workspace restored in %.3f s\n", rr.total_seconds());
  const bool done = dmtcp.run_until(
      [&] {
        auto inode =
            cluster.kernel().shared_fs().lookup("/shared/results/workspace");
        return inode && inode->data.size() > 0;
      },
      cluster.kernel().loop().now() + 120 * timeconst::kSecond);
  std::printf("session completed: %s\n", done ? "yes" : "NO");
  return done ? 0 : 1;
}
