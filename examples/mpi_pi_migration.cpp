// Cluster-to-desktop migration (§1 use case 6): run the CPU-intensive phase
// of an MPI computation on a cluster, checkpoint it, and restart the whole
// computation — MPI daemons included — consolidated onto fewer nodes.
//
// The workload is ParGeant4-style master/worker event processing under the
// MPICH2-like mpd runtime, launched exactly as the paper describes (§3):
//   dmtcp_checkpoint mpdboot -n 8
//   dmtcp_checkpoint mpirun <mpi-program>
#include <cstdio>

#include "apps/distributed.h"
#include "core/launch.h"
#include "mpi/runtime.h"
#include "sim/cluster.h"

using namespace dsim;

int main() {
  core::DmtcpOptions opts;
  opts.ckpt_dir = "/shared/ckpt";  // images visible from every node
  sim::Cluster cluster(sim::Cluster::lab_cluster(8, /*san=*/true));
  core::DmtcpControl dmtcp(cluster.kernel(), opts);
  apps::register_distributed_programs(cluster.kernel());
  mpi::register_runtime_programs(cluster.kernel());

  // Phase 1: the big cluster does the heavy lifting.
  dmtcp.launch(0, "mpdboot", {"8"});
  dmtcp.run_for(100 * timeconst::kMillisecond);
  dmtcp.launch(0, "mpd_mpirun",
               mpi::mpirun_argv(16, 8, "pargeant4", {"600", "20", "pi"}));
  dmtcp.run_for(400 * timeconst::kMillisecond);

  const auto& round = dmtcp.checkpoint_now();
  std::printf("cluster checkpoint: %.3f s, %d processes, %.1f MB\n",
              round.total_seconds(), round.procs,
              round.total_compressed / 1048576.0);

  // Phase 2: take the images home — restart everything on 2 nodes.
  dmtcp.kill_computation();
  std::map<NodeId, NodeId> consolidate;
  for (NodeId n = 0; n < 8; ++n) consolidate[n] = n % 2;
  const auto& rr = dmtcp.restart(consolidate);
  std::printf("restarted on 2 nodes: %.3f s, %d processes migrated\n",
              rr.total_seconds(), rr.procs);

  const bool done = dmtcp.run_until(
      [&] {
        auto inode = cluster.kernel().shared_fs().lookup("/shared/results/pi");
        return inode && inode->data.size() > 0;
      },
      cluster.kernel().loop().now() + 300 * timeconst::kSecond);
  if (done) {
    auto inode = cluster.kernel().shared_fs().lookup("/shared/results/pi");
    auto bytes = inode->data.materialize(0, inode->data.size());
    std::printf("computation finished on the small machine: %.*s\n",
                static_cast<int>(bytes.size()),
                reinterpret_cast<const char*>(bytes.data()));
  }
  return done ? 0 : 1;
}
