// Quickstart: checkpoint and restart a single application.
//
//   dmtcp_checkpoint <program>      — launch under checkpoint control
//   dmtcp_command --checkpoint      — take a cluster-wide checkpoint
//   dmtcp_restart_script.sh         — restart after a failure
//
// This example runs a Python-like interactive application on one node,
// checkpoints it mid-run, simulates a crash, restarts from the generated
// script, and shows the program completing as if nothing happened.
#include <cstdio>

#include "apps/desktop.h"
#include "core/launch.h"
#include "sim/cluster.h"

using namespace dsim;

int main() {
  // A single 8-core workstation (the paper's §5.1 desktop testbed).
  sim::Cluster cluster(sim::Cluster::single_node());
  core::DmtcpControl dmtcp(cluster.kernel(), core::DmtcpOptions{});
  apps::register_desktop_programs(cluster.kernel());

  // dmtcp_checkpoint python — run 400 interactive iterations.
  dmtcp.launch(0, "desktop_app", {"python", "400", "quickstart"});
  dmtcp.run_for(200 * timeconst::kMillisecond);

  // dmtcp_command --checkpoint
  const auto& round = dmtcp.checkpoint_now();
  std::printf("checkpoint: %.3f s, image %.1f MB (gzip) / %.1f MB raw\n",
              round.total_seconds(),
              round.total_compressed / 1048576.0,
              round.total_uncompressed / 1048576.0);

  // Simulate a crash of the whole machine's processes...
  dmtcp.kill_computation();
  std::printf("crashed the computation; restarting from the script...\n");

  // ...and run dmtcp_restart_script.sh.
  const auto& rr = dmtcp.restart();
  std::printf("restart: %.3f s, %d process(es) resumed\n",
              rr.total_seconds(), rr.procs);

  // The program finishes its remaining iterations normally.
  const bool done = dmtcp.run_until(
      [&] {
        auto inode =
            cluster.kernel().shared_fs().lookup("/shared/results/quickstart");
        return inode && inode->data.size() > 0;
      },
      cluster.kernel().loop().now() + 60 * timeconst::kSecond);
  std::printf("completed after restart: %s\n", done ? "yes" : "NO");
  return done ? 0 : 1;
}
