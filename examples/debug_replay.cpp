// Debugging long-running jobs with checkpoints (§1 use cases 4 and 5):
// take periodic checkpoints of a distributed computation; when a "bug"
// appears late in the run, restart repeatedly from the last checkpoint
// taken before it — the paper's short debug-recompile cycle, and the
// checkpoint image as "the ultimate bug report".
#include <cstdio>

#include "apps/distributed.h"
#include "core/launch.h"
#include "mpi/runtime.h"
#include "sim/cluster.h"

using namespace dsim;

int main() {
  sim::Cluster cluster(sim::Cluster::lab_cluster(4));
  core::DmtcpControl dmtcp(cluster.kernel(), core::DmtcpOptions{});
  apps::register_distributed_programs(cluster.kernel());
  mpi::register_runtime_programs(cluster.kernel());

  dmtcp.launch(0, "orte_mpirun",
               mpi::mpirun_argv(8, 4, "nas", {"cg", "600", "dbg"}));
  dmtcp.run_for(150 * timeconst::kMillisecond);

  // Periodic checkpoints while the job runs (the --interval feature).
  int rounds = 0;
  for (; rounds < 3; ++rounds) {
    dmtcp.run_for(100 * timeconst::kMillisecond);
    const auto& round = dmtcp.checkpoint_now();
    std::printf("periodic checkpoint %d at t=%.2f s (%.3f s, %d procs)\n",
                rounds, to_seconds(round.requested), round.total_seconds(),
                round.procs);
  }

  // The "bug" manifests here. Kill the job and re-examine the suspicious
  // region by replaying from the last checkpoint — as many times as needed.
  std::printf("bug observed! replaying the last checkpoint 3 times...\n");
  for (int replay = 0; replay < 3; ++replay) {
    dmtcp.kill_computation();
    const auto& rr = dmtcp.restart();
    std::printf("  replay %d: restarted %d procs in %.3f s\n", replay,
                rr.procs, rr.total_seconds());
    // "Step through" the suspicious window.
    dmtcp.run_for(50 * timeconst::kMillisecond);
  }

  // Satisfied, let the job run to completion from the final replay.
  const bool done = dmtcp.run_until(
      [&] {
        auto inode =
            cluster.kernel().shared_fs().lookup("/shared/results/dbg");
        return inode && inode->data.size() > 0;
      },
      cluster.kernel().loop().now() + 300 * timeconst::kSecond);
  std::printf("job completed after replay: %s\n", done ? "yes" : "NO");
  return done ? 0 : 1;
}
