#!/usr/bin/env python3
"""Validate a --trace-out Chrome trace and report where requests waited.

Stdlib-only, run by the CI bench-smoke job over the trace that bench_obs
emits. Two jobs in one pass:

1. Schema validation. The file must be a Chrome trace_event JSON object —
   `displayTimeUnit` plus a `traceEvents` array of 'M' metadata and 'X'
   complete events — loadable by Perfetto / chrome://tracing. Every 'X'
   event must carry the span fields the tracer promises (ts/dur in
   microseconds, pid/tid naming a registered process/lane, args with
   trace/span/parent/tenant/qos/op/n), every pid/tid must have been named
   by a metadata event, span ids must be unique, and events must be sorted
   by (ts, span id) — the byte-determinism contract.

2. Queue-wait attribution. Spans are aggregated by stage name, weighted by
   their batch size (`args.n`: one lookup batch span covers n keys), and
   the top contributors by total wait are printed — the "where did the
   pause go" table, derived from the trace alone.

Usage: trace_report.py TRACE.json [--top N]
Exits nonzero after printing every schema violation.
"""

import json
import sys

REQUIRED_ARGS = ("trace", "span", "parent", "tenant", "qos", "op", "n")


def fail(path, msg):
    print(f"FAIL {path}: {msg}", file=sys.stderr)
    return 1


def validate(path, data):
    rc = 0
    if not isinstance(data, dict):
        return fail(path, "top level is not a JSON object")
    if data.get("displayTimeUnit") not in ("ms", "ns"):
        rc |= fail(path, "missing or invalid 'displayTimeUnit'")
    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        return rc | fail(path, "'traceEvents' missing or empty")

    named_pids = set()
    named_lanes = set()
    spans = []
    seen_span_ids = set()
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") == "process_name":
                named_pids.add(ev.get("pid"))
            elif ev.get("name") == "thread_name":
                named_lanes.add((ev.get("pid"), ev.get("tid")))
            else:
                rc |= fail(path, f"event {i}: unknown metadata '{ev.get('name')}'")
            continue
        if ph != "X":
            rc |= fail(path, f"event {i}: unexpected phase '{ph}' "
                             "(only M and X are emitted)")
            continue
        for field in ("name", "ts", "dur", "pid", "tid", "args"):
            if field not in ev:
                rc |= fail(path, f"event {i}: X event missing '{field}'")
                break
        else:
            args = ev["args"]
            missing = [a for a in REQUIRED_ARGS if a not in args]
            if missing:
                rc |= fail(path, f"event {i}: args missing {missing}")
                continue
            if ev["dur"] < 0 or ev["ts"] < 0:
                rc |= fail(path, f"event {i}: negative ts/dur")
            if ev["pid"] not in named_pids:
                rc |= fail(path, f"event {i}: pid {ev['pid']} has no "
                                 "process_name metadata")
            if (ev["pid"], ev["tid"]) not in named_lanes:
                rc |= fail(path, f"event {i}: lane ({ev['pid']}, {ev['tid']}) "
                                 "has no thread_name metadata")
            if args["span"] in seen_span_ids:
                rc |= fail(path, f"event {i}: duplicate span id {args['span']}")
            seen_span_ids.add(args["span"])
            spans.append(ev)

    keys = [(ev["ts"], ev["args"]["span"]) for ev in spans]
    if keys != sorted(keys):
        rc |= fail(path, "X events are not sorted by (ts, span id): the "
                         "byte-determinism contract is broken")
    return rc, spans


def report(spans, top):
    # Wait attribution: per stage, total span-seconds weighted by batch
    # size. A span covering an n-key batch held each of those keys for its
    # duration, so it contributes n x dur of per-request wait.
    by_stage = {}
    for ev in spans:
        count, total_us = by_stage.get(ev["name"], (0, 0.0))
        n = ev["args"]["n"]
        by_stage[ev["name"]] = (count + n, total_us + ev["dur"] * n)
    ranked = sorted(by_stage.items(), key=lambda kv: -kv[1][1])

    grand_us = sum(us for _, (_, us) in ranked) or 1.0
    print(f"{'stage':<24} {'requests':>9} {'total_ms':>10} "
          f"{'mean_us':>9} {'share':>6}")
    for name, (count, total_us) in ranked[:top]:
        print(f"{name:<24} {count:>9} {total_us / 1e3:>10.3f} "
              f"{total_us / count:>9.3f} {total_us / grand_us:>6.1%}")


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    top = 5
    for i, a in enumerate(argv):
        if a == "--top" and i + 1 < len(argv):
            top = int(argv[i + 1])
            args = [x for x in args if x != argv[i + 1]]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    path = args[0]
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, str(e))
    rc, spans = validate(path, data)
    if rc:
        return rc
    print(f"OK   {path}: {len(spans)} spans, schema valid; top {top} "
          "queue-wait contributors:")
    report(spans, top)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
