#!/usr/bin/env python3
"""Validate a --trace-out Chrome trace and report where requests waited.

Stdlib-only, run by the CI bench-smoke job over the trace that bench_obs
emits. Two jobs in one pass:

1. Schema validation. The file must be a Chrome trace_event JSON object —
   `displayTimeUnit` plus a `traceEvents` array of 'M' metadata and 'X'
   complete events — loadable by Perfetto / chrome://tracing. Every 'X'
   event must carry the span fields the tracer promises (ts/dur in
   microseconds, pid/tid naming a registered process/lane, args with
   trace/span/parent/tenant/qos/op/n), every pid/tid must have been named
   by a metadata event, span ids must be unique, and events must be sorted
   by (ts, span id) — the byte-determinism contract.

2. Queue-wait attribution. Spans are aggregated by stage name, weighted by
   their batch size (`args.n`: one lookup batch span covers n keys), and
   the top contributors by total wait are printed — the "where did the
   pause go" table, derived from the trace alone.

3. Critical-path cross-check (--critical-path HEALTH.json). Re-runs the
   C++ backward sweep (src/obs/critpath.cc) over the Chrome trace alone —
   latest-started active span wins each instant, uncovered gaps split
   across the health document's phase marks, everything in integer
   nanoseconds recovered from the microsecond timestamps — and compares
   the per-stage attribution against every round's and restart's report
   embedded in the --health-out document. The sweep partitions each
   window exactly, so the two must agree to well under 1% per stage; any
   stage diverging more than 1% of its window fails the run.

Usage: trace_report.py TRACE.json [--top N] [--critical-path HEALTH.json]
Exits nonzero after printing every schema violation.
"""

import bisect
import json
import sys

REQUIRED_ARGS = ("trace", "span", "parent", "tenant", "qos", "op", "n")


def fail(path, msg):
    print(f"FAIL {path}: {msg}", file=sys.stderr)
    return 1


def validate(path, data):
    rc = 0
    if not isinstance(data, dict):
        return fail(path, "top level is not a JSON object")
    if data.get("displayTimeUnit") not in ("ms", "ns"):
        rc |= fail(path, "missing or invalid 'displayTimeUnit'")
    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        return rc | fail(path, "'traceEvents' missing or empty")

    named_pids = set()
    named_lanes = set()
    spans = []
    seen_span_ids = set()
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") == "process_name":
                named_pids.add(ev.get("pid"))
            elif ev.get("name") == "thread_name":
                named_lanes.add((ev.get("pid"), ev.get("tid")))
            else:
                rc |= fail(path, f"event {i}: unknown metadata '{ev.get('name')}'")
            continue
        if ph != "X":
            rc |= fail(path, f"event {i}: unexpected phase '{ph}' "
                             "(only M and X are emitted)")
            continue
        for field in ("name", "ts", "dur", "pid", "tid", "args"):
            if field not in ev:
                rc |= fail(path, f"event {i}: X event missing '{field}'")
                break
        else:
            args = ev["args"]
            missing = [a for a in REQUIRED_ARGS if a not in args]
            if missing:
                rc |= fail(path, f"event {i}: args missing {missing}")
                continue
            if ev["dur"] < 0 or ev["ts"] < 0:
                rc |= fail(path, f"event {i}: negative ts/dur")
            if ev["pid"] not in named_pids:
                rc |= fail(path, f"event {i}: pid {ev['pid']} has no "
                                 "process_name metadata")
            if (ev["pid"], ev["tid"]) not in named_lanes:
                rc |= fail(path, f"event {i}: lane ({ev['pid']}, {ev['tid']}) "
                                 "has no thread_name metadata")
            if args["span"] in seen_span_ids:
                rc |= fail(path, f"event {i}: duplicate span id {args['span']}")
            seen_span_ids.add(args["span"])
            spans.append(ev)

    keys = [(ev["ts"], ev["args"]["span"]) for ev in spans]
    if keys != sorted(keys):
        rc |= fail(path, "X events are not sorted by (ts, span id): the "
                         "byte-determinism contract is broken")
    return rc, spans


def report(spans, top):
    # Wait attribution: per stage, total span-seconds weighted by batch
    # size. A span covering an n-key batch held each of those keys for its
    # duration, so it contributes n x dur of per-request wait.
    by_stage = {}
    for ev in spans:
        count, total_us = by_stage.get(ev["name"], (0, 0.0))
        n = ev["args"]["n"]
        by_stage[ev["name"]] = (count + n, total_us + ev["dur"] * n)
    ranked = sorted(by_stage.items(), key=lambda kv: -kv[1][1])

    grand_us = sum(us for _, (_, us) in ranked) or 1.0
    print(f"{'stage':<24} {'requests':>9} {'total_ms':>10} "
          f"{'mean_us':>9} {'share':>6}")
    for name, (count, total_us) in ranked[:top]:
        print(f"{name:<24} {count:>9} {total_us / 1e3:>10.3f} "
              f"{total_us / count:>9.3f} {total_us / grand_us:>6.1%}")


def ns(us):
    """Microseconds (printed at %.3f — thousandths are exact ns) back to
    integer nanoseconds."""
    return round(us * 1000)


def sweep(spans, lanes, begin, end, phases):
    """The critpath.cc backward sweep, verbatim in integer ns: returns
    {(stage, pid, lane, tenant): ns} partitioning [begin, end)."""
    live = []
    for ev in spans:
        b = ns(ev["ts"])
        e = b + ns(ev["dur"])
        if e > b and e > begin and b < end:
            live.append((b, ev["args"]["span"], e, ev))
    live.sort(key=lambda s: (s[0], s[1]))
    begins = [s[0] for s in live]
    ends = sorted(s[2] for s in live)

    agg = {}

    def charge(key, dt):
        agg[key] = agg.get(key, 0) + dt

    def attribute_gap(lo, hi):
        t = lo
        for name, pb, pe in phases:
            if t >= hi:
                break
            pb, pe = max(t, pb), min(hi, pe)
            if pe <= pb:
                continue
            if pb > t:
                charge(("idle", -1, "", 0), pb - t)
            charge((name, -1, "", 0), pe - pb)
            t = pe
        if t < hi:
            charge(("idle", -1, "", 0), hi - t)

    t = end
    while t > begin:
        pick = None
        for i in range(bisect.bisect_left(begins, t) - 1, -1, -1):
            if live[i][2] >= t:
                pick = live[i]
                break
        if pick is not None:
            b, _, _, ev = pick
            lo = max(b, begin)
            key = (ev["name"], ev["pid"],
                   lanes.get((ev["pid"], ev["tid"]), ""),
                   ev["args"]["tenant"])
            charge(key, t - lo)
            t = lo
        else:
            i = bisect.bisect_left(ends, t)
            lo = begin if i == 0 else max(begin, ends[i - 1])
            attribute_gap(lo, t)
            t = lo
    return agg


def cross_check(trace_path, health_path, spans, lanes):
    """Recompute every round's and restart's critical path from the trace
    and diff it against the reports in the --health-out document."""
    try:
        with open(health_path) as f:
            health = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(health_path, str(e))
    cp = health.get("critical_path")
    if not isinstance(cp, dict):
        return fail(health_path, "missing 'critical_path' object")
    windows = [(f"round {w['round']}", w) for w in cp.get("rounds", [])]
    windows += [(f"restart {w['restart']}", w) for w in cp.get("restarts", [])]
    if not windows:
        return fail(health_path, "no critical-path windows to cross-check")
    rc = 0
    for label, w in windows:
        rep = w["report"]
        begin, end = ns(rep["begin_us"]), ns(rep["end_us"])
        phases = [(p["name"], ns(p["begin_us"]), ns(p["end_us"]))
                  for p in w["phases"]]
        mine = sweep(spans, lanes, begin, end, phases)
        total = end - begin
        if sum(mine.values()) != total:
            rc |= fail(trace_path,
                       f"{label}: python sweep attributed "
                       f"{sum(mine.values())} ns of a {total} ns window")
            continue
        theirs = {(e["stage"], e["pid"], e["lane"], e["tenant"]): e["ns"]
                  for e in rep["entries"]}
        worst = 0.0
        for key in set(mine) | set(theirs):
            delta = abs(mine.get(key, 0) - theirs.get(key, 0))
            worst = max(worst, delta / total)
            if delta > 0.01 * total:
                rc |= fail(
                    trace_path,
                    f"{label}: stage {key} diverges {delta} ns "
                    f"({delta / total:.2%} of the window) between the "
                    "trace-derived sweep and the health report")
        if not rc:
            print(f"OK   {label}: {len(theirs)} stages agree "
                  f"(worst divergence {worst:.4%} of {total} ns)")
    return rc


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    top = 5
    health_path = None
    for i, a in enumerate(argv):
        if a == "--top" and i + 1 < len(argv):
            top = int(argv[i + 1])
            args = [x for x in args if x != argv[i + 1]]
        if a == "--critical-path" and i + 1 < len(argv):
            health_path = argv[i + 1]
            args = [x for x in args if x != argv[i + 1]]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    path = args[0]
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, str(e))
    rc, spans = validate(path, data)
    if rc:
        return rc
    print(f"OK   {path}: {len(spans)} spans, schema valid; top {top} "
          "queue-wait contributors:")
    report(spans, top)
    if health_path is not None:
        lanes = {}
        for ev in data["traceEvents"]:
            if ev.get("ph") == "M" and ev.get("name") == "thread_name":
                lanes[(ev["pid"], ev["tid"])] = ev["args"]["name"]
        rc |= cross_check(path, health_path, spans, lanes)
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
