#!/usr/bin/env python3
"""Sanity-check and regression-gate the JSON emitted by the bench binaries.

Two modes, both stdlib-only:

Absolute checks (always run): after the CI bench-smoke job runs
bench_incremental, bench_cdc, bench_service, bench_failover, bench_async,
bench_erasure and bench_tenants with tiny parameters, assert the emitted
files are
well-formed and the headline numbers are in the physically sensible range
(dedup actually happened, CDC actually resynchronized, the cluster store
actually stored shared chunks once, the chunk-store service actually
queued lookups and survived a replica failover, the mid-round endpoint
kill re-homed and replayed with zero lost chunks, the shard rebalance
moved ~1/new_shards of the bytes, the async pipeline took the pause off
the critical path, (k,m) erasure striping beat 2x replication on
stored bytes while surviving m losses, weighted fair queueing kept a
victim tenant's p99 within 2x of solo beside a noisy neighbor while the
FIFO ablation degraded it >= 4x, and request tracing cost zero simulated
time while its spans reproduced the victim-tenant p99 within 1%).

Baseline diff (--baseline DIR): compare a fresh run against the committed
baseline JSON in DIR (bench/baselines/, generated with the same smoke
parameters — the simulation is deterministic, so the numbers are stable).
Fail on a >10% regression in any gated metric: dedup ratios must not drop,
checkpoint times and service waits must not grow. To accept an intentional
change, regenerate the baselines with the smoke parameters and commit them
alongside the change.

Usage: check_bench_json.py [--baseline DIR] BENCH_incremental.json ...
"""

import json
import os
import sys

TOLERANCE = 0.10  # >10% in the bad direction fails the gate


def fail(path, msg):
    print(f"FAIL {path}: {msg}", file=sys.stderr)
    return 1


def require(data, path, dotted):
    """Fetch data[a][b]... for dotted key 'a.b...', raising KeyError."""
    cur = data
    for part in dotted.split("."):
        cur = cur[part]
    return cur


def check_incremental(path, data):
    rc = 0
    for key in ("config", "generations", "summary"):
        if key not in data:
            rc |= fail(path, f"missing top-level key '{key}'")
    if rc:
        return rc
    gens = data["generations"]
    if not gens:
        return fail(path, "no generations recorded")
    for key in ("gen", "full_bytes", "incremental_bytes", "dedup_ratio"):
        if key not in gens[0]:
            rc |= fail(path, f"generation record missing '{key}'")
    if rc:
        return rc
    try:
        ratio = require(data, path, "summary.stored_bytes_ratio")
    except (KeyError, TypeError):
        return fail(path, "missing key 'summary.stored_bytes_ratio'")
    if not 0.0 < ratio < 1.0:
        rc |= fail(
            path,
            f"stored_bytes_ratio={ratio}: incremental mode should store "
            "strictly less than full checkpointing",
        )
    # After the first generation the dedup ratio must exceed 1 (later
    # generations reference resident chunks).
    final_ratio = gens[-1].get("dedup_ratio", 0)
    if len(gens) > 1 and final_ratio <= 1.0:
        rc |= fail(path, f"final dedup_ratio={final_ratio} <= 1")
    return rc


def check_cdc(path, data):
    rc = 0
    for key in (
        "config",
        "insertion.fixed.dedup_retained",
        "insertion.cdc.dedup_retained",
        "cluster.stored_ratio",
        "cluster.shared_stored_once",
        "summary",
    ):
        try:
            require(data, path, key)
        except (KeyError, TypeError):
            rc |= fail(path, f"missing key '{key}'")
    if rc:
        return rc
    fixed = data["insertion"]["fixed"]["dedup_retained"]
    cdc = data["insertion"]["cdc"]["dedup_retained"]
    if cdc < 0.8:
        rc |= fail(path, f"cdc dedup_retained={cdc} < 0.8 after insertion")
    if fixed > 0.2:
        rc |= fail(
            path,
            f"fixed dedup_retained={fixed} > 0.2: the insertion offset no "
            "longer defeats fixed chunking (bench misconfigured?)",
        )
    ratio = data["cluster"]["stored_ratio"]
    if not 0.0 < ratio < 1.0:
        rc |= fail(path, f"cluster stored_ratio={ratio} not in (0, 1)")
    if data["cluster"]["shared_stored_once"] is not True:
        rc |= fail(path, "shared library chunks were not stored exactly once")
    return rc


def check_service(path, data):
    rc = 0
    for key in (
        "config",
        "sweep",
        "batch.rpcs",
        "batch.rpcs_batch1",
        "failover.r2_restart_ok",
        "failover.r2_rereplicated_chunks",
        "failover.r2_degraded_after_heal",
        "failover.r1_needs_restore",
        "failover.r1_lost_chunks",
        "summary.wait_ms_at_min_ranks",
        "summary.wait_ms_at_max_ranks",
        "summary.wait_ms_shards4_at_max_ranks",
        "summary.contention_knee_visible",
        "summary.shard_speedup",
        "summary.shard_knee_shifted",
        "summary.batch_rpc_reduction",
        "summary.replica_write_amplification",
    ):
        try:
            require(data, path, key)
        except (KeyError, TypeError):
            rc |= fail(path, f"missing key '{key}'")
    if rc:
        return rc
    if not data["sweep"]:
        return fail(path, "empty rank sweep")
    if any(pt["lookups"] <= 0 for pt in data["sweep"]):
        rc |= fail(path, "a sweep point served no dedup lookups")
    # Requests are RPCs over the simulated network: every sweep point must
    # show nonzero network bytes and in-flight time on the lookup path.
    for pt in data["sweep"]:
        if "shards" not in pt:
            rc |= fail(path, "sweep point missing 'shards'")
            break
        if pt.get("rpc_net_bytes", 0) <= 0 or pt.get("rpc_net_wait_ms", 0) <= 0:
            rc |= fail(
                path,
                f"sweep point ranks={pt.get('ranks')} shards={pt.get('shards')}"
                " shows no RPC network traffic: requests are teleporting",
            )
            break
    # The point of the service: lookups queue, so per-lookup wait must grow
    # with rank count (the Fig.-5b contention knee).
    lo = data["summary"]["wait_ms_at_min_ranks"]
    hi = data["summary"]["wait_ms_at_max_ranks"]
    if not (0 < lo < hi):
        rc |= fail(
            path,
            f"lookup wait did not grow with ranks (min={lo} ms, max={hi} "
            "ms): the service queue is not contending",
        )
    if data["summary"]["contention_knee_visible"] is not True:
        rc |= fail(path, "contention knee not visible in the rank sweep")
    # Sharding must move the knee right: the four-shard wait at max ranks
    # stays strictly below the one-shard wait.
    s4 = data["summary"]["wait_ms_shards4_at_max_ranks"]
    if not (0 < s4 < hi):
        rc |= fail(
            path,
            f"--store-shards=4 wait ({s4} ms) is not strictly below the "
            f"one-shard wait ({hi} ms) at max ranks",
        )
    if data["summary"]["shard_knee_shifted"] is not True:
        rc |= fail(path, "shard sweep did not shift the contention knee")
    # Batching must amortize: K keys per RPC means materially fewer RPCs.
    if data["summary"]["batch_rpc_reduction"] <= 1.0:
        rc |= fail(
            path,
            f"batch_rpc_reduction={data['summary']['batch_rpc_reduction']}: "
            "--lookup-batch=8 did not reduce the RPC count",
        )
    amp = data["summary"]["replica_write_amplification"]
    if not 1.5 < amp < 2.5:
        rc |= fail(
            path,
            f"replica_write_amplification={amp}: two replicas should write "
            "~2x the device bytes of one",
        )
    if data["failover"]["r2_restart_ok"] is not True:
        rc |= fail(path, "restart with --chunk-replicas=2 did not survive "
                         "the node failure")
    if data["failover"]["r2_rereplicated_chunks"] <= 0:
        rc |= fail(path, "the re-replication daemon healed no chunks after "
                         "the R=2 node failure")
    if data["failover"]["r2_degraded_after_heal"] != 0:
        rc |= fail(path, "chunks were still replica-degraded after the "
                         "re-replication daemon ran")
    if data["failover"]["r1_needs_restore"] is not True:
        rc |= fail(path, "restart with --chunk-replicas=1 did not report "
                         "the forced re-store after the node failure")
    if data["failover"]["r1_lost_chunks"] <= 0:
        rc |= fail(path, "R=1 node failure lost no chunks (bench "
                         "misconfigured?)")
    return rc


def check_failover(path, data):
    rc = 0
    for key in (
        "config",
        "failover.baseline_ckpt_seconds",
        "failover.kill_ckpt_seconds",
        "failover.rehomed_shards",
        "failover.replayed_requests",
        "failover.recovery_rounds",
        "failover.lost_chunks",
        "failover.restart_ok",
        "rebalance.old_shards",
        "rebalance.new_shards",
        "rebalance.moved_keys",
        "rebalance.scanned_keys",
        "rebalance.moved_fraction",
        "rebalance.expected_fraction",
        "rebalance.restart_ok",
        "summary.failover_recovery_rounds",
        "summary.post_failover_lost_chunks",
        "summary.kill_overhead_ratio",
        "summary.rebalance_moved_fraction",
    ):
        try:
            require(data, path, key)
        except (KeyError, TypeError):
            rc |= fail(path, f"missing key '{key}'")
    if rc:
        return rc
    fo = data["failover"]
    # The failover must actually have engaged: a shard re-homed and parked
    # requests replayed (callers saw latency, never errors).
    if fo["rehomed_shards"] < 1:
        rc |= fail(path, "no shard was re-homed by the mid-round kill")
    if fo["replayed_requests"] <= 0:
        rc |= fail(path, "no in-flight request was replayed after the "
                         "re-home: the kill missed the write phase")
    # Recovery must be bounded: the heal daemon restores full replica
    # strength within the kill round or the next one.
    if fo["recovery_rounds"] > 1:
        rc |= fail(
            path,
            f"failover_recovery_rounds={fo['recovery_rounds']}: the store "
            "took more than one extra round to re-replicate",
        )
    if fo["lost_chunks"] != 0:
        rc |= fail(path, f"post-failover lost_chunks={fo['lost_chunks']} "
                         "(must be 0 at R=2)")
    if fo["restart_ok"] is not True:
        rc |= fail(path, "restart after the endpoint kill did not succeed")
    # Detection + replay cost time; the kill round must not be *faster*
    # than the clean incremental baseline.
    if data["summary"]["kill_overhead_ratio"] < 1.0:
        rc |= fail(
            path,
            f"kill_overhead_ratio={data['summary']['kill_overhead_ratio']}: "
            "the kill round was faster than the clean baseline "
            "(mis-measured?)",
        )
    rb = data["rebalance"]
    # Consistent hashing: growing S -> S+1 moves ~1/(S+1) of the stored
    # bytes — nothing more (full reshuffle) and not nothing (no movement).
    expected = rb["expected_fraction"]
    moved = rb["moved_fraction"]
    if not expected * 0.5 <= moved <= expected * 1.7:
        rc |= fail(
            path,
            f"rebalance_moved_fraction={moved} not within tolerance of "
            f"1/new_shards={expected}: key movement is not "
            "consistent-hash-minimal",
        )
    if rb["moved_keys"] <= 0 or rb["moved_keys"] >= rb["scanned_keys"]:
        rc |= fail(
            path,
            f"moved {rb['moved_keys']} of {rb['scanned_keys']} keys: "
            "expected a strict, nonzero subset to move",
        )
    if rb["restart_ok"] is not True:
        rc |= fail(path, "restart over the rebalanced store did not succeed")
    return rc


def check_async(path, data):
    rc = 0
    for key in (
        "config",
        "pause.generations",
        "pause.speedup",
        "pause.async_queued_bytes",
        "identity.manifests_match",
        "identity.restored_match",
        "compression.raw_new_bytes",
        "compression.compressed_new_bytes",
        "failover.lost_chunks",
        "failover.restart_ok",
        "sweep",
        "summary.pause_speedup",
        "summary.compressed_lt_raw",
        "summary.compress_loses_at_slow_cpu",
        "summary.compress_wins_at_fast_cpu",
    ):
        try:
            require(data, path, key)
        except (KeyError, TypeError):
            rc |= fail(path, f"missing key '{key}'")
    if rc:
        return rc
    # The headline claim: the app-visible pause collapses once encode+store
    # runs behind the app's back (target ~10x; gate at 5x).
    speedup = data["summary"]["pause_speedup"]
    if speedup < 5.0:
        rc |= fail(path, f"pause_speedup={speedup} < 5x: the async pipeline "
                         "is not off the critical path")
    gens = data["pause"]["generations"]
    if not gens:
        return rc | fail(path, "no pause generations recorded")
    for g in gens:
        if g["async_seconds"] >= g["sync_seconds"]:
            rc |= fail(
                path,
                f"gen {g['gen']}: async pause {g['async_seconds']}s is not "
                f"below the sync pause {g['sync_seconds']}s",
            )
    if data["pause"]["async_queued_bytes"] <= 0:
        rc |= fail(path, "the background pipeline queued no bytes")
    # Moving the charging off the critical path must not move a byte.
    if data["identity"]["manifests_match"] is not True:
        rc |= fail(path, "sync and async generation-0 manifests diverged")
    if data["identity"]["restored_match"] is not True:
        rc |= fail(path, "restored content differs between --compress=none "
                         "and --compress=lz77+huffman")
    raw = data["compression"]["raw_new_bytes"]
    packed = data["compression"]["compressed_new_bytes"]
    if not 0 < packed < raw:
        rc |= fail(path, f"compressed_new_bytes={packed} not strictly below "
                         f"raw_new_bytes={raw} at lz77+huffman")
    if data["failover"]["lost_chunks"] != 0:
        rc |= fail(path, f"lost_chunks={data['failover']['lost_chunks']} "
                         "after the mid-drain endpoint kill (must be 0)")
    if data["failover"]["restart_ok"] is not True:
        rc |= fail(path, "restart after the mid-drain endpoint kill failed")
    if not data["sweep"]:
        return rc | fail(path, "empty compress-bandwidth sweep")
    if any(pt["gzip_drain_seconds"] <= 0 for pt in data["sweep"]):
        rc |= fail(path, "a sweep point recorded no drain time")
    # The kCompressBw crossover: a slow compressor loses the drain race to
    # plain streaming, a fast one wins it.
    if data["summary"]["compress_loses_at_slow_cpu"] is not True:
        rc |= fail(path, "compression did not lose the drain race at the "
                         "slow-compressor sweep point")
    if data["summary"]["compress_wins_at_fast_cpu"] is not True:
        rc |= fail(path, "compression did not win the drain race at the "
                         "fast-compressor sweep point")
    return rc


def check_erasure(path, data):
    rc = 0
    for key in (
        "config",
        "overhead.erasure_stored_bytes",
        "overhead.replication_stored_bytes",
        "overhead.erasure_factor",
        "overhead.overhead_ratio",
        "restart_sweep",
        "rebuild.erasure_moved_per_chunk",
        "rebuild.replication_moved_per_chunk",
        "rebuild.per_chunk_ratio",
        "tiering.demoted_chunks",
        "tiering.restart_ok",
        "summary.overhead_ratio",
        "summary.rebuild_per_chunk_ratio",
        "summary.sweep_all_restarts_ok",
    ):
        try:
            require(data, path, key)
        except (KeyError, TypeError):
            rc |= fail(path, f"missing key '{key}'")
    if rc:
        return rc
    # The byte-economics headline: (k+m)/k striping must store materially
    # fewer bytes than 2x replication — (4,2) is 1.5x vs 2.0x, ratio 0.75.
    ratio = data["summary"]["overhead_ratio"]
    if not 0 < ratio <= 0.8:
        rc |= fail(
            path,
            f"overhead_ratio={ratio}: erasure striping must store at most "
            "0.8x of the R=2 replication footprint",
        )
    # Every restart in the 0..m loss sweep must complete with nothing lost:
    # <= m fragment losses are survivable by construction.
    sweep = data["restart_sweep"]
    if not sweep:
        return rc | fail(path, "empty restart_sweep")
    for pt in sweep:
        if pt["lost_chunks"] != 0:
            rc |= fail(
                path,
                f"restart with {pt['losses']} losses reported "
                f"lost_chunks={pt['lost_chunks']} (must be 0 for <= m)",
            )
        if pt["restart_ok"] is not True:
            rc |= fail(path, f"restart with {pt['losses']} losses failed")
    # Rebuilding a dead fragment moves (2k + 2F - 1) x frag_bytes per
    # chunk; a full R=2 re-store moves 3x the container. Per healed chunk
    # the fragment rebuild must come out strictly cheaper.
    rb_ratio = data["rebuild"]["per_chunk_ratio"]
    if not 0 < rb_ratio < 1.0:
        rc |= fail(
            path,
            f"rebuild per_chunk_ratio={rb_ratio}: fragment rebuild must "
            "move fewer bytes per healed chunk than an R=2 full re-store",
        )
    if data["rebuild"].get("erasure_post_heal_lost_chunks", 0) != 0:
        rc |= fail(path, "chunks were lost during the erasure rebuild")
    # The cold tier actually demoted something and the wider-striped store
    # still restarts.
    if data["tiering"]["demoted_chunks"] <= 0:
        rc |= fail(path, "no chunk was demoted to the cold profile")
    if data["tiering"]["restart_ok"] is not True:
        rc |= fail(path, "restart over the demoted (cold) store failed")
    return rc


def check_tenants(path, data):
    rc = 0
    for key in ("config", "arms", "dedup", "restart", "admission", "summary"):
        if key not in data:
            rc |= fail(path, f"missing top-level key '{key}'")
    if rc:
        return rc
    arms = {a["name"]: a for a in data["arms"]}
    for name in ("solo", "fq", "nofq"):
        if name not in arms:
            rc |= fail(path, f"missing arm '{name}'")
        elif arms[name]["victim_samples"] <= 0:
            rc |= fail(path, f"arm '{name}' recorded no victim wait samples")
    if rc:
        return rc
    s = data["summary"]
    # Weighted fair queueing isolates the victim: its p99 beside the noisy
    # neighbor stays within 2x of checkpointing alone.
    if s["fq_ratio"] > 2.0:
        rc |= fail(
            path,
            f"fq_ratio={s['fq_ratio']}: with fair queueing the victim's "
            "p99 must stay within 2x of its solo baseline",
        )
    # The FIFO ablation genuinely degrades: >= 4x solo, and strictly worse
    # than the fair-queued run (the policy, not the load, is the difference).
    if s["nofq_ratio"] < 4.0:
        rc |= fail(
            path,
            f"nofq_ratio={s['nofq_ratio']}: the FIFO ablation must degrade "
            "the victim's p99 at least 4x over solo",
        )
    if s["nofq_p99_ms"] <= s["fq_p99_ms"]:
        rc |= fail(
            path,
            f"nofq p99 {s['nofq_p99_ms']} <= fq p99 {s['fq_p99_ms']}: "
            "disabling fair queueing must be strictly worse for the victim",
        )
    # Cross-tenant dedup: the identical shared-library ballast is stored
    # once and attributed to the tenant pair.
    if data["dedup"]["cross_tenant_shared_bytes"] <= 0:
        rc |= fail(path, "no cross-tenant shared bytes were deduplicated")
    # The victim's kill + restart beside the live neighbor loses nothing.
    if data["restart"]["ok"] is not True:
        rc |= fail(path, "victim restart beside the noisy neighbor failed")
    if data["restart"]["lost_chunks"] != 0:
        rc |= fail(
            path,
            f"victim restart lost {data['restart']['lost_chunks']} chunks "
            "(must be 0)",
        )
    # Admission control engaged: the budgeted tenant had stores held at
    # the edge, and the holds accumulated measurable wait.
    if data["admission"]["held_requests"] <= 0:
        rc |= fail(path, "admission control never held an over-budget store")
    if data["admission"]["wait_seconds"] <= 0:
        rc |= fail(path, "admission holds accumulated no wait")
    return rc


def check_obs(path, data):
    rc = 0
    for key in (
        "config",
        "overhead.untraced_sim_seconds",
        "overhead.traced_sim_seconds",
        "overhead.trace_overhead_ratio",
        "p99_check.hist_p99_ms",
        "p99_check.trace_p99_ms",
        "p99_check.p99_rel_err",
        "p99_check.victim_samples",
        "spans",
        "coverage.heal_spans",
        "coverage.decode_spans",
        "coverage.async_spans",
        "coverage.healed",
        "summary.trace_overhead_ratio",
        "summary.p99_rel_err",
        "summary.spans_total",
        "summary.open_spans",
        "summary.tiling_violations",
    ):
        try:
            require(data, path, key)
        except (KeyError, TypeError):
            rc |= fail(path, f"missing key '{key}'")
    if rc:
        return rc
    s = data["summary"]
    # Tracing never posts events or charges simulated time: the traced run
    # must reach the measurement point at the same virtual instant as the
    # untraced run (ratio 1.0 exactly; gate leaves rounding headroom).
    ratio = s["trace_overhead_ratio"]
    if not 0.98 <= ratio <= 1.02:
        rc |= fail(
            path,
            f"trace_overhead_ratio={ratio}: tracing perturbed the "
            "simulation (must be 1.0 — the tracer observes, never charges)",
        )
    # Fidelity: the per-stage spans must reproduce the victim tenant's p99
    # (the BENCH_tenants headline) within 1% — histogram bucketing is the
    # only permitted divergence (<= 0.4%).
    if s["p99_rel_err"] > 0.01:
        rc |= fail(
            path,
            f"p99_rel_err={s['p99_rel_err']}: the trace-derived victim p99 "
            "diverged more than 1% from the wait histogram",
        )
    if data["p99_check"]["victim_samples"] <= 0:
        rc |= fail(path, "the victim probe window recorded no wait samples")
    if s["spans_total"] <= 0:
        rc |= fail(path, "the traced storm produced no spans")
    # Balance invariants: every opened span closed, every traced request's
    # children tiled it exactly.
    if s["open_spans"] != 0:
        rc |= fail(path, f"open_spans={s['open_spans']} after quiesce "
                         "(a span leaked)")
    if s["tiling_violations"] != 0:
        rc |= fail(path, f"tiling_violations={s['tiling_violations']}: "
                         "child spans did not tile their root")
    # Subsystem coverage: the storm exercises the request path end to end...
    for subsystem in ("store", "rpc", "device", "cluster"):
        if data["spans"].get(subsystem, 0) <= 0:
            rc |= fail(path, f"no '{subsystem}.*' spans in the traced storm")
    # ...and the erasure + async world covers the background paths.
    cov = data["coverage"]
    if cov["heal_spans"] <= 0 or cov["decode_spans"] <= 0:
        rc |= fail(path, "the erasure arm produced no heal/decode spans")
    if cov["async_spans"] <= 0:
        rc |= fail(path, "the async pipeline produced no async.* spans")
    if cov["healed"] is not True:
        rc |= fail(path, "the erasure arm did not heal to full strength")
    return rc


def check_health(path, data):
    rc = 0
    for key in (
        "config",
        "healthy.alerts_fired",
        "healthy.active_alerts",
        "healthy.series_rounds",
        "healthy.critpath_rounds_checked",
        "healthy.critpath_sum_matches",
        "overhead.health_off_sim_seconds",
        "overhead.health_on_sim_seconds",
        "overhead.trace_overhead_ratio",
        "kill.alerts",
        "kill.clear_rounds",
        "kill.cleared",
        "kill.alert_set_ok",
        "kill.lost_chunks",
        "kill.restart_ok",
        "summary.healthy_alerts",
        "summary.kill_alert_set_ok",
        "summary.clear_rounds",
        "summary.trace_overhead_ratio",
        "summary.critpath_top_fraction",
        "summary.critpath_sum_matches",
    ):
        try:
            require(data, path, key)
        except (KeyError, TypeError):
            rc |= fail(path, f"missing key '{key}'")
    if rc:
        return rc
    s = data["summary"]
    # Determinism is the contract: a healthy sweep fires exactly zero
    # alerts — not "few", zero.
    if s["healthy_alerts"] != 0:
        rc |= fail(path, f"healthy_alerts={s['healthy_alerts']}: a clean "
                         "sweep must fire no alert")
    if data["healthy"]["active_alerts"] != 0:
        rc |= fail(path, "alerts still active after the healthy sweep")
    if data["healthy"]["series_rounds"] <= 0:
        rc |= fail(path, "the health series recorded no round samples")
    # The kill fires exactly {heal_backlog}: the drain rule sees the
    # degraded chunks at the round's close, and nothing else trips.
    if s["kill_alert_set_ok"] is not True:
        rc |= fail(path, f"kill fired {data['kill']['alerts']} "
                         "(must be exactly ['heal_backlog'])")
    # ...and clears once re-replication drains the backlog, within the
    # gated window.
    if data["kill"]["cleared"] is not True:
        rc |= fail(path, "the heal-backlog alert never cleared")
    if s["clear_rounds"] > 2:
        rc |= fail(path, f"clear_rounds={s['clear_rounds']}: the alert "
                         "took more than 2 extra rounds to clear")
    # Sampling the registry and evaluating rules charges no simulated
    # time: both runs reach the measurement point at the same instant.
    ratio = s["trace_overhead_ratio"]
    if not 0.98 <= ratio <= 1.02:
        rc |= fail(path, f"trace_overhead_ratio={ratio}: the health layer "
                         "perturbed the simulation (must be 1.0)")
    # Every round's blame report must partition its window exactly.
    if s["critpath_sum_matches"] is not True:
        rc |= fail(path, "a critical-path report did not sum to its "
                         "round's stage_breakdown total")
    frac = s["critpath_top_fraction"]
    if not 0.0 < frac <= 1.0:
        rc |= fail(path, f"critpath_top_fraction={frac} not in (0, 1]")
    if data["kill"]["lost_chunks"] != 0:
        rc |= fail(path, f"lost_chunks={data['kill']['lost_chunks']} after "
                         "the kill (must be 0 at R=2)")
    if data["kill"]["restart_ok"] is not True:
        rc |= fail(path, "restart after the kill did not succeed")
    return rc


CHECKERS = {
    "BENCH_incremental.json": check_incremental,
    "BENCH_cdc.json": check_cdc,
    "BENCH_service.json": check_service,
    "BENCH_failover.json": check_failover,
    "BENCH_async.json": check_async,
    "BENCH_erasure.json": check_erasure,
    "BENCH_tenants.json": check_tenants,
    "BENCH_obs.json": check_obs,
    "BENCH_health.json": check_health,
}

# Baseline-gated metrics per file: name -> (extractor, good direction).
# "higher" fails when fresh < baseline * (1 - TOLERANCE) (a dedup ratio
# dropped); "lower" fails when fresh > baseline * (1 + TOLERANCE) (a
# checkpoint time or service wait grew).
BASELINE_METRICS = {
    "BENCH_incremental.json": {
        "final_dedup_ratio": (
            lambda d: d["generations"][-1]["dedup_ratio"], "higher"),
        "incremental_seconds": (
            lambda d: d["summary"]["incremental_seconds"], "lower"),
        "stored_bytes_ratio": (
            lambda d: d["summary"]["stored_bytes_ratio"], "lower"),
    },
    "BENCH_cdc.json": {
        "cdc_dedup_retained": (
            lambda d: d["insertion"]["cdc"]["dedup_retained"], "higher"),
        "cluster_stored_ratio": (
            lambda d: d["cluster"]["stored_ratio"], "lower"),
    },
    "BENCH_service.json": {
        "max_ckpt_seconds": (
            lambda d: max(p["ckpt_seconds"] for p in d["sweep"]), "lower"),
        "wait_ms_at_max_ranks": (
            lambda d: d["summary"]["wait_ms_at_max_ranks"], "lower"),
        "wait_ms_shards4_at_max_ranks": (
            lambda d: d["summary"]["wait_ms_shards4_at_max_ranks"], "lower"),
        "shard_speedup": (
            lambda d: d["summary"]["shard_speedup"], "higher"),
    },
    "BENCH_failover.json": {
        "kill_ckpt_seconds": (
            lambda d: d["failover"]["kill_ckpt_seconds"], "lower"),
        "kill_overhead_ratio": (
            lambda d: d["summary"]["kill_overhead_ratio"], "lower"),
        "rebalance_seconds": (
            lambda d: d["rebalance"]["rebalance_seconds"], "lower"),
    },
    "BENCH_async.json": {
        "pause_speedup": (
            lambda d: d["summary"]["pause_speedup"], "higher"),
        "async_pause_seconds": (
            lambda d: d["pause"]["async_seconds"], "lower"),
        "compress_ratio": (
            lambda d: d["summary"]["compress_ratio"], "lower"),
        "max_drain_seconds": (
            lambda d: d["pause"]["max_drain_seconds"], "lower"),
    },
    "BENCH_erasure.json": {
        "overhead_ratio": (
            lambda d: d["summary"]["overhead_ratio"], "lower"),
        "rebuild_per_chunk_ratio": (
            lambda d: d["summary"]["rebuild_per_chunk_ratio"], "lower"),
        "restart_seconds_at_max_losses": (
            lambda d: d["summary"]["restart_seconds_at_max_losses"],
            "lower"),
    },
    "BENCH_tenants.json": {
        "fq_p99_ms": (
            lambda d: d["summary"]["fq_p99_ms"], "lower"),
        "fq_ratio": (
            lambda d: d["summary"]["fq_ratio"], "lower"),
        "nofq_ratio": (
            lambda d: d["summary"]["nofq_ratio"], "higher"),
        "cross_tenant_shared_bytes": (
            lambda d: d["summary"]["cross_tenant_shared_bytes"], "higher"),
    },
    "BENCH_obs.json": {
        "trace_overhead_ratio": (
            lambda d: d["summary"]["trace_overhead_ratio"], "lower"),
        "p99_rel_err": (
            lambda d: d["summary"]["p99_rel_err"], "lower"),
        "spans_total": (
            lambda d: d["summary"]["spans_total"], "higher"),
    },
    "BENCH_health.json": {
        "health_overhead_ratio": (
            lambda d: d["summary"]["trace_overhead_ratio"], "lower"),
        "clear_rounds": (
            lambda d: d["summary"]["clear_rounds"], "lower"),
        # The same fraction gated in both directions brackets the top
        # blame share in a +-10% band: the attribution is stable, not
        # merely bounded.
        "critpath_top_fraction": (
            lambda d: d["summary"]["critpath_top_fraction"], "higher"),
        "critpath_top_fraction_ceiling": (
            lambda d: d["summary"]["critpath_top_fraction"], "lower"),
    },
}


def check_baseline(path, name, data, baseline_dir):
    base_path = os.path.join(baseline_dir, name)
    try:
        with open(base_path) as f:
            base = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"baseline {base_path}: {e}")
    rc = 0
    for metric, (extract, direction) in BASELINE_METRICS.get(name, {}).items():
        try:
            fresh_v = extract(data)
            base_v = extract(base)
        except (KeyError, IndexError, TypeError, ValueError) as e:
            rc |= fail(path, f"baseline metric '{metric}': {e}")
            continue
        if base_v == 0:
            continue  # nothing to compare against
        if direction == "higher":
            bad = fresh_v < base_v * (1.0 - TOLERANCE)
        else:
            bad = fresh_v > base_v * (1.0 + TOLERANCE)
        if bad:
            rc |= fail(
                path,
                f"regression in {metric}: {fresh_v:.6g} vs baseline "
                f"{base_v:.6g} (>{TOLERANCE:.0%} worse; direction: "
                f"{direction} is better). If intentional, regenerate "
                f"{base_path} with the smoke parameters.",
            )
        else:
            print(f"OK   {path}: {metric} {fresh_v:.6g} within "
                  f"{TOLERANCE:.0%} of baseline {base_v:.6g}")
    return rc


def main(argv):
    args = argv[1:]
    baseline_dir = None
    if args and args[0] == "--baseline":
        if len(args) < 2:
            print(__doc__, file=sys.stderr)
            return 2
        baseline_dir = args[1]
        args = args[2:]
    if not args:
        print(__doc__, file=sys.stderr)
        return 2
    rc = 0
    for path in args:
        name = path.rsplit("/", 1)[-1]
        checker = CHECKERS.get(name)
        if checker is None:
            rc |= fail(path, f"no checker registered for '{name}'")
            continue
        try:
            with open(path) as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            rc |= fail(path, str(e))
            continue
        this_rc = checker(path, data)
        if baseline_dir is not None:
            this_rc |= check_baseline(path, name, data, baseline_dir)
        rc |= this_rc
        if not this_rc:
            print(f"OK   {path}")
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
