#!/usr/bin/env python3
"""Sanity-check the JSON emitted by the bench binaries.

Used by the CI bench-smoke job: after running bench_incremental and
bench_cdc with tiny parameters, this script asserts the emitted files are
well-formed and that the headline numbers are in the physically sensible
range (dedup actually happened, CDC actually resynchronized, the cluster
store actually stored shared chunks once). Stdlib only.

Usage: check_bench_json.py BENCH_incremental.json BENCH_cdc.json ...
"""

import json
import sys


def fail(path, msg):
    print(f"FAIL {path}: {msg}", file=sys.stderr)
    return 1


def require(data, path, dotted):
    """Fetch data[a][b]... for dotted key 'a.b...', raising KeyError."""
    cur = data
    for part in dotted.split("."):
        cur = cur[part]
    return cur


def check_incremental(path, data):
    rc = 0
    for key in ("config", "generations", "summary"):
        if key not in data:
            rc |= fail(path, f"missing top-level key '{key}'")
    if rc:
        return rc
    gens = data["generations"]
    if not gens:
        return fail(path, "no generations recorded")
    for key in ("gen", "full_bytes", "incremental_bytes", "dedup_ratio"):
        if key not in gens[0]:
            rc |= fail(path, f"generation record missing '{key}'")
    if rc:
        return rc
    try:
        ratio = require(data, path, "summary.stored_bytes_ratio")
    except (KeyError, TypeError):
        return fail(path, "missing key 'summary.stored_bytes_ratio'")
    if not 0.0 < ratio < 1.0:
        rc |= fail(
            path,
            f"stored_bytes_ratio={ratio}: incremental mode should store "
            "strictly less than full checkpointing",
        )
    # After the first generation the dedup ratio must exceed 1 (later
    # generations reference resident chunks).
    final_ratio = gens[-1].get("dedup_ratio", 0)
    if len(gens) > 1 and final_ratio <= 1.0:
        rc |= fail(path, f"final dedup_ratio={final_ratio} <= 1")
    return rc


def check_cdc(path, data):
    rc = 0
    for key in (
        "config",
        "insertion.fixed.dedup_retained",
        "insertion.cdc.dedup_retained",
        "cluster.stored_ratio",
        "cluster.shared_stored_once",
        "summary",
    ):
        try:
            require(data, path, key)
        except (KeyError, TypeError):
            rc |= fail(path, f"missing key '{key}'")
    if rc:
        return rc
    fixed = data["insertion"]["fixed"]["dedup_retained"]
    cdc = data["insertion"]["cdc"]["dedup_retained"]
    if cdc < 0.8:
        rc |= fail(path, f"cdc dedup_retained={cdc} < 0.8 after insertion")
    if fixed > 0.2:
        rc |= fail(
            path,
            f"fixed dedup_retained={fixed} > 0.2: the insertion offset no "
            "longer defeats fixed chunking (bench misconfigured?)",
        )
    ratio = data["cluster"]["stored_ratio"]
    if not 0.0 < ratio < 1.0:
        rc |= fail(path, f"cluster stored_ratio={ratio} not in (0, 1)")
    if data["cluster"]["shared_stored_once"] is not True:
        rc |= fail(path, "shared library chunks were not stored exactly once")
    return rc


CHECKERS = {
    "BENCH_incremental.json": check_incremental,
    "BENCH_cdc.json": check_cdc,
}


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    rc = 0
    for path in argv[1:]:
        name = path.rsplit("/", 1)[-1]
        checker = CHECKERS.get(name)
        if checker is None:
            rc |= fail(path, f"no checker registered for '{name}'")
            continue
        try:
            with open(path) as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            rc |= fail(path, str(e))
            continue
        this_rc = checker(path, data)
        rc |= this_rc
        if not this_rc:
            print(f"OK   {path}")
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
