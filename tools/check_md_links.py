#!/usr/bin/env python3
"""Check that markdown links and code pointers reference real files.

Stdlib-only, run by the CI docs job over README.md and docs/. Two classes
of reference are verified:

1. Relative markdown links: `[text](path)` and `[text](path#anchor)`.
   External schemes (http, https, mailto) are skipped — CI must not
   depend on the network. The path is resolved against the linking
   file's directory, then against the repository root. When the target
   is a markdown file (or a pure-anchor link into the same document),
   the `#anchor` fragment is also checked against the target's headings,
   slugified the way GitHub renders them (lowercased, punctuation
   stripped, spaces to hyphens, duplicates suffixed -1, -2, ...).

2. Backtick code pointers: `src/ckptstore/erasure.cc`,
   `tools/check_bench_json.py:42`, `docs/ckptstore.md`, `src/cluster/`.
   A token is treated as a pointer when it contains a path separator and
   either ends with '/' (a directory) or with a known source extension,
   optionally suffixed with a :line number. Tokens under build/ are
   skipped (generated artifacts). This keeps prose like `--erasure 4,2`
   or `a.k.a.` out of scope while still catching a doc that names a file
   the tree no longer has.

Usage: check_md_links.py PATH [PATH ...]   (files or directories)
Exits nonzero after printing every broken reference.
"""

import os
import re
import sys

# [text](target) — non-greedy so adjacent links split correctly; images
# ([!text](target)) match the same way and are checked the same way.
MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# `token` spans one line; the pointer filter below decides relevance.
BACKTICK = re.compile(r"`([^`\n]+)`")
CODE_EXTS = (".h", ".cc", ".py", ".md", ".yml", ".json", ".txt", ".cmake")
POINTER = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_./-]*(:\d+)?$")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def repo_root():
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(here)


def is_code_pointer(token):
    """A backtick token that names a path in the tree (see module doc)."""
    if "/" not in token or not POINTER.match(token):
        return False
    path = token.rsplit(":", 1)[0] if re.search(r":\d+$", token) else token
    if path.startswith("build/"):
        return False  # generated artifacts are not in the tree
    return path.endswith("/") or path.endswith(CODE_EXTS)


def resolve(target, md_dir, root):
    """The resolved path for `target` relative to the md file or the repo
    root, or None when it exists nowhere."""
    path = target.split("#", 1)[0]
    if not path:
        return ""  # pure-anchor link into the same document
    path = path.rstrip("/") or path
    for base in (md_dir, root):
        cand = os.path.normpath(os.path.join(base, path))
        if os.path.exists(cand):
            return cand
    return None


def slugify(heading):
    """A markdown heading's GitHub anchor: lowercase, punctuation stripped
    (hyphens and underscores survive), spaces to hyphens."""
    # Inline code/emphasis markers render as text content, not punctuation
    # to strip wholesale: `--flag` keeps its hyphens.
    text = heading.strip().lower()
    text = re.sub(r"[`*]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(md_path):
    """All anchors GitHub generates for `md_path`'s ATX headings, with
    duplicate slugs suffixed -1, -2, ... in document order."""
    with open(md_path, encoding="utf-8") as f:
        text = f.read()
    # Drop fenced code blocks: a '# comment' in a shell transcript is not
    # a heading.
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    anchors = set()
    counts = {}
    for m in re.finditer(r"^#{1,6}[ \t]+(.+?)[ \t]*#*$", text, flags=re.M):
        slug = slugify(m.group(1))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        anchors.add(slug if seen == 0 else f"{slug}-{seen}")
    return anchors


def check_anchor(target, resolved, md_path):
    """None when `target`'s #fragment lands on a heading, else an error."""
    if "#" not in target:
        return None
    anchor = target.split("#", 1)[1]
    dest = md_path if resolved == "" else resolved
    if not dest.endswith(".md"):
        return None  # only markdown targets have heading anchors
    if anchor not in heading_anchors(dest):
        return f"anchor '#{anchor}' not found in {os.path.relpath(dest)}"
    return None


def check_file(md_path, root):
    broken = []
    with open(md_path, encoding="utf-8") as f:
        text = f.read()
    md_dir = os.path.dirname(os.path.abspath(md_path))

    for match in MD_LINK.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_SCHEMES):
            continue
        # GitHub web-UI routes (CI badge and its click-through) resolve on
        # github.com relative to the repo page, never in the tree.
        if "/actions/workflows/" in target:
            continue
        line = text.count("\n", 0, match.start()) + 1
        resolved = resolve(target, md_dir, root)
        if resolved is None:
            broken.append((line, f"link target '{target}' not found"))
            continue
        anchor_err = check_anchor(target, resolved, os.path.abspath(md_path))
        if anchor_err:
            broken.append((line, anchor_err))

    # Strip fenced code blocks before scanning backticks: shell transcripts
    # legitimately mention files that only exist after a build.
    prose = re.sub(r"```.*?```", "", text, flags=re.S)
    for match in BACKTICK.finditer(prose):
        token = match.group(1).strip()
        if not is_code_pointer(token):
            continue
        path = re.sub(r":\d+$", "", token)
        if resolve(path, md_dir, root) is None:
            line = text.count("\n", 0, text.find(f"`{token}`")) + 1
            broken.append((line, f"code pointer '{token}' not found"))
    return broken


def collect(paths):
    out = []
    for p in paths:
        if os.path.isdir(p):
            for dirpath, _, files in os.walk(p):
                out.extend(
                    os.path.join(dirpath, f)
                    for f in sorted(files)
                    if f.endswith(".md")
                )
        else:
            out.append(p)
    return out


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    root = repo_root()
    rc = 0
    checked = 0
    for md in collect(argv[1:]):
        checked += 1
        for line, msg in check_file(md, root):
            print(f"FAIL {md}:{line}: {msg}", file=sys.stderr)
            rc = 1
    if rc == 0:
        print(f"OK   {checked} markdown file(s): all links and code "
              "pointers resolve")
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
